//! Minimal self-contained SVG charts for the figure harness.
//!
//! The paper presents its evaluation as scatter plots (Figures 6, 9, 12),
//! grouped bars (Figures 7, 8, 11, 13), and stacked bars (Figures 10, 14).
//! This module renders all three chart shapes as standalone SVG strings with
//! axes, ticks, and legends — no plotting dependency, so `cargo run -p
//! tsg-bench --bin plots` regenerates the paper-style images from the
//! harness's CSV output on any machine.

use std::fmt::Write as _;

/// Chart canvas dimensions and margins.
const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 430.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// Per-series colours (colour-blind-safe-ish categorical palette).
pub const PALETTE: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

/// A named point series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data space.
    pub points: Vec<(f64, f64)>,
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (data must be positive).
    Log10,
}

fn transform(v: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log10 => v.max(1e-12).log10(),
    }
}

fn nice_ticks(lo: f64, hi: f64, scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Log10 => {
            let (a, b) = (lo.floor() as i64, hi.ceil() as i64);
            (a..=b).map(|e| e as f64).collect()
        }
        Scale::Linear => {
            let span = (hi - lo).max(1e-12);
            let raw = span / 5.0;
            let mag = 10f64.powf(raw.log10().floor());
            let step = [1.0, 2.0, 5.0, 10.0]
                .iter()
                .map(|m| m * mag)
                .find(|&s| span / s <= 6.0)
                .unwrap_or(mag * 10.0);
            let start = (lo / step).floor() * step;
            let mut ticks = Vec::new();
            let mut t = start;
            while t <= hi + step * 0.5 {
                ticks.push(t);
                t += step;
            }
            ticks
        }
    }
}

fn tick_label(v: f64, scale: Scale) -> String {
    match scale {
        Scale::Log10 => {
            let p = v.round() as i32;
            match p {
                -3..=3 => format!("{}", 10f64.powi(p)),
                _ => format!("1e{p}"),
            }
        }
        Scale::Linear => {
            if v.abs() >= 1000.0 {
                format!("{:.0}", v)
            } else {
                format!("{v:.4}")
                    .trim_end_matches('0')
                    .trim_end_matches('.')
                    .to_string()
            }
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A scatter plot with optional log axes.
pub fn scatter(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    x_scale: Scale,
    y_scale: Scale,
    series: &[Series],
) -> String {
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            pts.push((transform(x, x_scale), transform(y, y_scale)));
        }
    }
    let (mut x_lo, mut x_hi) = bounds(pts.iter().map(|p| p.0));
    let (mut y_lo, mut y_hi) = bounds(pts.iter().map(|p| p.1));
    pad(&mut x_lo, &mut x_hi);
    pad(&mut y_lo, &mut y_hi);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = |v: f64| MARGIN_L + (v - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = |v: f64| MARGIN_T + plot_h - (v - y_lo) / (y_hi - y_lo) * plot_h;

    let mut svg = svg_header(title);
    axes(
        &mut svg, x_lo, x_hi, y_lo, y_hi, x_scale, y_scale, xlabel, ylabel, &sx, &sy,
    );
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        for &(x, y) in &s.points {
            let (tx, ty) = (transform(x, x_scale), transform(y, y_scale));
            let _ = writeln!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}" fill-opacity="0.65"/>"##,
                sx(tx),
                sy(ty)
            );
        }
    }
    legend(&mut svg, series.iter().map(|s| s.name.as_str()));
    svg.push_str("</svg>\n");
    svg
}

/// A grouped bar chart: one group per `group_labels` entry, one bar per
/// series within each group. Zero-valued bars are drawn as hollow markers
/// (the paper's `0.00` failure convention).
pub fn grouped_bars(
    title: &str,
    ylabel: &str,
    group_labels: &[String],
    series: &[Series],
) -> String {
    let y_hi = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.08;
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let groups = group_labels.len().max(1) as f64;
    let group_w = plot_w / groups;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
    let sy = |v: f64| MARGIN_T + plot_h - v / y_hi * plot_h;

    let mut svg = svg_header(title);
    // Y axis + ticks.
    for t in nice_ticks(0.0, y_hi, Scale::Linear) {
        let y = sy(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"##,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0,
            tick_label(t, Scale::Linear)
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="16" y="{:.1}" font-size="11" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"##,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(ylabel)
    );
    for (g, label) in group_labels.iter().enumerate() {
        let gx = MARGIN_L + g as f64 * group_w;
        for (si, s) in series.iter().enumerate() {
            let v = s.points.get(g).map(|p| p.1).unwrap_or(0.0);
            let x = gx + group_w * 0.1 + si as f64 * bar_w;
            let color = PALETTE[si % PALETTE.len()];
            if v > 0.0 {
                let _ = writeln!(
                    svg,
                    r##"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="{:.1}" fill="{color}"/>"##,
                    sy(v),
                    sy(0.0) - sy(v)
                );
            } else {
                // Failure marker: small hollow x at the baseline.
                let _ = writeln!(
                    svg,
                    r##"<text x="{:.1}" y="{:.1}" font-size="8" fill="{color}" text-anchor="middle">x</text>"##,
                    x + bar_w / 2.0,
                    sy(0.0) - 2.0
                );
            }
        }
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="end" transform="rotate(-40 {:.1} {:.1})">{}</text>"##,
            gx + group_w / 2.0,
            HEIGHT - MARGIN_B + 14.0,
            gx + group_w / 2.0,
            HEIGHT - MARGIN_B + 14.0,
            xml_escape(label)
        );
    }
    let _ = writeln!(
        svg,
        r##"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#000"/>"##,
        sy(0.0),
        WIDTH - MARGIN_R,
        sy(0.0)
    );
    legend(&mut svg, series.iter().map(|s| s.name.as_str()));
    svg.push_str("</svg>\n");
    svg
}

/// A stacked bar chart: one bar per group, stacked by series (the runtime
/// breakdowns of Figures 10 and 14).
pub fn stacked_bars(
    title: &str,
    ylabel: &str,
    group_labels: &[String],
    series: &[Series],
) -> String {
    let totals: Vec<f64> = (0..group_labels.len())
        .map(|g| {
            series
                .iter()
                .map(|s| s.points.get(g).map(|p| p.1).unwrap_or(0.0))
                .sum()
        })
        .collect();
    let y_hi = totals.iter().copied().fold(0.0f64, f64::max).max(1e-9) * 1.08;
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let groups = group_labels.len().max(1) as f64;
    let group_w = plot_w / groups;
    let bar_w = group_w * 0.6;
    let sy = |v: f64| MARGIN_T + plot_h - v / y_hi * plot_h;

    let mut svg = svg_header(title);
    for t in nice_ticks(0.0, y_hi, Scale::Linear) {
        let y = sy(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"##,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0,
            tick_label(t, Scale::Linear)
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="16" y="{:.1}" font-size="11" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"##,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(ylabel)
    );
    for (g, label) in group_labels.iter().enumerate() {
        let x = MARGIN_L + g as f64 * group_w + (group_w - bar_w) / 2.0;
        let mut acc = 0.0f64;
        for (si, s) in series.iter().enumerate() {
            let v = s.points.get(g).map(|p| p.1).unwrap_or(0.0);
            if v <= 0.0 {
                continue;
            }
            let color = PALETTE[si % PALETTE.len()];
            let _ = writeln!(
                svg,
                r##"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="{:.1}" fill="{color}"/>"##,
                sy(acc + v),
                sy(acc) - sy(acc + v)
            );
            acc += v;
        }
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="end" transform="rotate(-40 {:.1} {:.1})">{}</text>"##,
            x + bar_w / 2.0,
            HEIGHT - MARGIN_B + 14.0,
            x + bar_w / 2.0,
            HEIGHT - MARGIN_B + 14.0,
            xml_escape(label)
        );
    }
    legend(&mut svg, series.iter().map(|s| s.name.as_str()));
    svg.push_str("</svg>\n");
    svg
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn pad(lo: &mut f64, hi: &mut f64) {
    let span = (*hi - *lo).max(1e-9);
    *lo -= span * 0.05;
    *hi += span * 0.05;
}

fn svg_header(title: &str) -> String {
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="Helvetica,Arial,sans-serif">
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{x:.1}" y="22" font-size="14" text-anchor="middle" font-weight="bold">{t}</text>
"##,
        x = WIDTH / 2.0,
        t = xml_escape(title)
    )
}

#[allow(clippy::too_many_arguments)]
fn axes(
    svg: &mut String,
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    x_scale: Scale,
    y_scale: Scale,
    xlabel: &str,
    ylabel: &str,
    sx: &impl Fn(f64) -> f64,
    sy: &impl Fn(f64) -> f64,
) {
    for t in nice_ticks(x_lo, x_hi, x_scale) {
        if t < x_lo || t > x_hi {
            continue;
        }
        let x = sx(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>
<text x="{x:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"##,
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 14.0,
            tick_label(t, x_scale)
        );
    }
    for t in nice_ticks(y_lo, y_hi, y_scale) {
        if t < y_lo || t > y_hi {
            continue;
        }
        let y = sy(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{}</text>"##,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0,
            tick_label(t, y_scale)
        );
    }
    let _ = writeln!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{:.1}" height="{:.1}" fill="none" stroke="#000"/>
<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>
<text x="16" y="{:.1}" font-size="11" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"##,
        WIDTH - MARGIN_L - MARGIN_R,
        HEIGHT - MARGIN_T - MARGIN_B,
        MARGIN_L + (WIDTH - MARGIN_L - MARGIN_R) / 2.0,
        HEIGHT - 12.0,
        xml_escape(xlabel),
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        xml_escape(ylabel)
    );
}

fn legend<'a>(svg: &mut String, names: impl Iterator<Item = &'a str>) {
    let x = WIDTH - MARGIN_R + 12.0;
    for (i, name) in names.enumerate() {
        let y = MARGIN_T + 10.0 + i as f64 * 18.0;
        let color = PALETTE[i % PALETTE.len()];
        let _ = writeln!(
            svg,
            r##"<rect x="{x:.1}" y="{:.1}" width="10" height="10" fill="{color}"/>
<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"##,
            y - 9.0,
            x + 14.0,
            y,
            xml_escape(name)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "alpha".into(),
                points: vec![(1.0, 2.0), (10.0, 4.0), (100.0, 8.0)],
            },
            Series {
                name: "beta".into(),
                points: vec![(1.0, 1.0), (10.0, 3.0), (100.0, 0.0)],
            },
        ]
    }

    #[test]
    fn scatter_produces_well_formed_svg() {
        let svg = scatter("t", "x", "y", Scale::Log10, Scale::Linear, &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("alpha"));
        assert!(svg.contains("beta"));
    }

    #[test]
    fn grouped_bars_mark_failures() {
        let labels = vec!["m1".to_string(), "m2".into(), "m3".into()];
        let svg = grouped_bars("t", "GFlops", &labels, &demo_series());
        // Rects: 1 background + 5 positive bars + 2 legend swatches; the
        // zero bar is drawn as the failure marker instead.
        assert_eq!(svg.matches("<rect").count(), 1 + 5 + 2);
        assert!(svg.contains(">x</text>"));
    }

    #[test]
    fn stacked_bars_stack_to_totals() {
        let labels = vec!["m1".to_string(), "m2".into()];
        let series = vec![
            Series {
                name: "s1".into(),
                points: vec![(0.0, 1.0), (0.0, 2.0)],
            },
            Series {
                name: "s2".into(),
                points: vec![(0.0, 3.0), (0.0, 1.0)],
            },
        ];
        let svg = stacked_bars("t", "ms", &labels, &series);
        assert!(svg.contains("</svg>"));
        // 1 background + 4 stacked segments + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2);
    }

    #[test]
    fn log_ticks_are_decades() {
        assert_eq!(nice_ticks(0.0, 3.0, Scale::Log10), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tick_label(2.0, Scale::Log10), "100");
        assert_eq!(tick_label(5.0, Scale::Log10), "1e5");
    }

    #[test]
    fn linear_ticks_cover_range() {
        let ticks = nice_ticks(0.0, 97.0, Scale::Linear);
        assert!(ticks.len() >= 4 && ticks.len() <= 8);
        assert!(*ticks.first().unwrap() <= 0.0);
        assert!(*ticks.last().unwrap() >= 90.0);
    }

    #[test]
    fn escaping_prevents_broken_markup() {
        let svg = scatter(
            "a<b & c",
            "x",
            "y",
            Scale::Linear,
            Scale::Linear,
            &demo_series(),
        );
        assert!(svg.contains("a&lt;b &amp; c"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let svg = scatter("t", "x", "y", Scale::Linear, Scale::Linear, &[]);
        assert!(svg.contains("</svg>"));
        let svg = grouped_bars("t", "y", &[], &[]);
        assert!(svg.contains("</svg>"));
    }
}
