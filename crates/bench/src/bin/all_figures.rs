//! Runs every table/figure harness in paper order, producing the complete
//! reproduction transcript (EXPERIMENTS.md is written from this output).

use std::process::Command;

fn main() {
    let bins = [
        "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!(">>> running {bin}");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
