//! CI gate for the observability layer's zero-cost claim: runs the default
//! pipeline through the free function and through a `SpGemm` context with
//! the `NullRecorder`, best-of-N each, and fails (exit 1) if the context
//! path is more than 5% slower. The design target is ≤2% (DESIGN.md §9);
//! the gate sits at 5% to absorb shared-runner jitter.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin overhead_check
//! ```

use std::process::ExitCode;
use std::time::Instant;

use tilespgemm_core::{Config, SpGemm};
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

/// Allowed Null-recorder regression, in percent.
const GATE_PCT: f64 = 5.0;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` overhead of `ctx.multiply` over the free function on one
/// matrix, after verifying the two paths produce identical products.
fn overhead_pct(ta: &TileMatrix<f64>, reps: usize) -> f64 {
    let cfg = Config::default();
    let ctx = SpGemm::new();
    let free = tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("warmup");
    let through_ctx = ctx.multiply(ta, ta).expect("warmup");
    assert_eq!(
        free.c, through_ctx.c,
        "context path must be bitwise-identical to the free function"
    );
    let mut best_free = f64::INFINITY;
    let mut best_ctx = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("multiply");
        best_free = best_free.min(ms(t0.elapsed()));
        let t1 = Instant::now();
        ctx.multiply(ta, ta).expect("multiply");
        best_ctx = best_ctx.min(ms(t1.elapsed()));
    }
    (best_ctx - best_free) / best_free * 100.0
}

fn main() -> ExitCode {
    let suite: [(&str, GenSpec); 2] = [
        (
            "fem-500",
            GenSpec::Fem {
                nodes: 500,
                block: 6,
                couplings: 4,
                spread: 20,
                seed: 1,
            },
        ),
        (
            "rmat-skewed",
            GenSpec::Rmat {
                scale: 12,
                edges: 25_000,
                mild: false,
                seed: 1,
            },
        ),
    ];
    let mut worst = f64::NEG_INFINITY;
    for (name, spec) in suite {
        let ta = TileMatrix::from_csr(&spec.build());
        let pct = overhead_pct(&ta, 9);
        println!("{name}: ctx-with-NullRecorder overhead {pct:+.2}% (gate {GATE_PCT}%)");
        worst = worst.max(pct);
    }
    if worst > GATE_PCT {
        eprintln!("overhead_check: FAIL — worst overhead {worst:+.2}% exceeds {GATE_PCT}%");
        return ExitCode::FAILURE;
    }
    println!("overhead_check: OK — worst overhead {worst:+.2}%");
    ExitCode::SUCCESS
}
