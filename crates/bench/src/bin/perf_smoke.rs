//! CI perf-smoke gate for the step-2/step-3 hot path.
//!
//! Runs the default pipeline (adaptive intersection, pair reuse, per-tile
//! scheduling) on the webbase-like R-MAT matrix `BENCH_pipeline.json` was
//! measured on, takes the best-of-N step2+step3 time, and fails (exit 1)
//! when it regresses more than [`GATE_PCT`] over the committed baseline row
//! (`matrix=webbase-like, scheduling=per-tile, pair_reuse=true`). A fresh
//! machine-readable record is written to `target/perf_smoke.json` for CI to
//! upload next to the committed baseline.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin perf_smoke
//! ```

use std::process::ExitCode;
use std::time::Instant;

use tilespgemm_core::Config;
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

/// Allowed step2+step3 regression over the committed baseline, in percent.
/// Wall-clock minima on shared runners still jitter at the several-percent
/// level, so the gate is looser than the ~0% target.
const GATE_PCT: f64 = 10.0;

/// Repetitions; the gate compares per-step minima, which stabilize faster
/// than whole-run wall times.
const REPS: usize = 7;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Extracts `"key":<number>` from a JSON fragment (crude, but the baseline
/// file is machine-written by `tile_pipeline.rs` with a fixed shape).
fn field(fragment: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = fragment.find(&pat)? + pat.len();
    let rest = &fragment[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed baseline's gated row (`matrix=webbase-like,
/// scheduling=per-tile, pair_reuse=true`). The `simd_ablation` records
/// carry neither a `scheduling` nor a `pair_reuse` key, so they can never
/// shadow this lookup.
fn baseline_row(json: &str) -> Option<&str> {
    json.lines().find(|line| {
        line.contains("\"matrix\":\"webbase-like\"")
            && line.contains("\"scheduling\":\"per-tile\"")
            && line.contains("\"pair_reuse\":true")
    })
}

fn main() -> ExitCode {
    let a = GenSpec::Rmat {
        scale: 14,
        edges: 80_000,
        mild: false,
        seed: 112,
    }
    .build();
    let ta = TileMatrix::from_csr(&a);
    let cfg = Config::default();
    tilespgemm_core::multiply(&ta, &ta, &cfg, &MemTracker::new()).expect("warmup");

    let (mut best2, mut best3, mut best_wall) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut peak_bytes = 0usize;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = tilespgemm_core::multiply(&ta, &ta, &cfg, &MemTracker::new()).expect("multiply");
        best_wall = best_wall.min(ms(t0.elapsed()));
        best2 = best2.min(ms(out.breakdown.step2));
        best3 = best3.min(ms(out.breakdown.step3));
        peak_bytes = out.peak_bytes;
    }
    let fresh = best2 + best3;

    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let json = std::fs::read_to_string(baseline_path).expect("read committed BENCH_pipeline.json");
    let row = baseline_row(&json).expect("baseline row for webbase-like/per-tile/reuse");
    let baseline3 = field(row, "step3_ms").expect("baseline step3_ms");
    let baseline = field(row, "step2_ms").expect("baseline step2_ms") + baseline3;

    let delta_pct = (fresh - baseline) / baseline * 100.0;
    let delta3_pct = (best3 - baseline3) / baseline3 * 100.0;
    println!(
        "perf_smoke: webbase-like step2+step3 {fresh:.1} ms vs baseline {baseline:.1} ms \
         ({delta_pct:+.1}%, gate +{GATE_PCT}%)"
    );
    println!(
        "perf_smoke: webbase-like step3 alone {best3:.1} ms vs baseline {baseline3:.1} ms \
         ({delta3_pct:+.1}%, gate +{GATE_PCT}%)"
    );
    println!("  step2 {best2:.1} ms | step3 {best3:.1} ms | wall {best_wall:.1} ms | peak {peak_bytes} B");

    let record = format!(
        concat!(
            "{{\"matrix\":\"webbase-like\",\"method\":\"perf_smoke\",",
            "\"step2_ms\":{:.4},\"step3_ms\":{:.4},\"wall_ms\":{:.4},",
            "\"peak_bytes\":{},\"baseline_step23_ms\":{:.4},\"delta_pct\":{:.2},",
            "\"baseline_step3_ms\":{:.4},\"delta3_pct\":{:.2}}}\n"
        ),
        best2, best3, best_wall, peak_bytes, baseline, delta_pct, baseline3, delta3_pct
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/perf_smoke.json");
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(out_path, &record).expect("write perf_smoke.json");
    println!("wrote {out_path}");

    if delta_pct > GATE_PCT {
        eprintln!("perf_smoke: FAIL — step2+step3 regressed {delta_pct:+.1}% (gate +{GATE_PCT}%)");
        return ExitCode::FAILURE;
    }
    // The SIMD step-3 kernels are this row's headline win; gate step 3 on
    // its own so a kernel regression can't hide behind a step-2 improvement.
    if delta3_pct > GATE_PCT {
        eprintln!("perf_smoke: FAIL — step3 regressed {delta3_pct:+.1}% (gate +{GATE_PCT}%)");
        return ExitCode::FAILURE;
    }
    println!("perf_smoke: OK");
    ExitCode::SUCCESS
}
