//! Figure 14: runtime breakdown of tSparse (left bar) vs TileSpGEMM (right
//! bar) on the 16-matrix dataset, both `f32`: step 1, step 2, step 3, and
//! memory allocation. The paper highlights tSparse's larger allocation
//! share (repeated output resizing) and its heavier steps 2–3 on matrices
//! with very sparse tiles.

use tilespgemm_core::Config;
use tsg_baselines::tsparse;
use tsg_bench::{banner, ms, quick};
use tsg_gen::tsparse_16;
use tsg_matrix::TileMatrix;
use tsg_runtime::{Breakdown, MemTracker};

fn row(name: &str, which: &str, b: &Breakdown) {
    println!(
        "  {:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        which,
        ms(b.step1),
        ms(b.step2),
        ms(b.step3),
        ms(b.alloc),
        ms(b.total())
    );
    println!(
        "csv,fig14,{},{},{:.3},{:.3},{:.3},{:.3}",
        name,
        which,
        ms(b.step1),
        ms(b.step2),
        ms(b.step3),
        ms(b.alloc)
    );
}

fn main() {
    banner("Figure 14: runtime breakdown, tSparse-like vs TileSpGEMM (both f32)");
    println!("csv,fig14,matrix,method,step1_ms,step2_ms,step3_ms,alloc_ms");
    let entries = tsparse_16();
    let entries: Vec<_> = if quick() {
        entries.into_iter().take(4).collect()
    } else {
        entries
    };
    for entry in entries {
        // Half-precision inputs, f32 arithmetic (see fig13).
        let a = tsg_matrix::halfsim::quantize_csr(&entry.build());
        let ta = TileMatrix::from_csr(&a);
        let ts = tsparse::multiply_tiled(&ta, &ta, &MemTracker::new()).unwrap();
        let tile =
            tilespgemm_core::multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        println!("\n{}", entry.name);
        println!(
            "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "method", "step1", "step2", "step3", "alloc", "total(ms)"
        );
        row(&entry.name, "tSparse", &ts.breakdown);
        row(&entry.name, "TileSpGEMM", &tile.breakdown);
    }
}
