//! Renders paper-style SVG figures from a figure-harness transcript.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin all_figures > figures_output.txt
//! cargo run --release -p tsg-bench --bin plots -- figures_output.txt plots/
//! ```
//!
//! Every `csv,` line in the transcript is parsed; one SVG per reproduced
//! figure is written into the output directory.

use std::collections::BTreeMap;
use std::path::Path;
use tsg_bench::plot::{grouped_bars, scatter, stacked_bars, Scale, Series};

#[derive(Debug, Default)]
struct Tables {
    /// figure -> rows of fields (without the leading `csv` and figure tag).
    rows: BTreeMap<String, Vec<Vec<String>>>,
}

fn parse(path: &str) -> Tables {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read transcript {path}: {e}"));
    let mut tables = Tables::default();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("csv,") else {
            continue;
        };
        let fields: Vec<String> = rest.split(',').map(str::to_string).collect();
        if fields.len() < 2 {
            continue;
        }
        // Skip header rows: their numeric columns aren't numeric.
        if fields[1] == "matrix" || fields[0] == "figure" {
            continue;
        }
        tables
            .rows
            .entry(fields[0].clone())
            .or_default()
            .push(fields[1..].to_vec());
    }
    tables
}

fn f(field: &str) -> f64 {
    field.parse().unwrap_or(0.0)
}

const METHODS: [&str; 5] = [
    "cuSPARSE-like",
    "bhSPARSE-like",
    "NSPARSE-like",
    "spECK-like",
    "TileSpGEMM",
];

/// fig6/7/8 row layout: matrix, method, op, device, time_ms, gflops,
/// peak_bytes, nnz_c, compression_rate.
fn perf_scatter(rows: &[Vec<String>]) -> Vec<Series> {
    METHODS
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: rows
                .iter()
                .filter(|r| r[1] == *m && r[2] == "A2" && r[3] == "rtx3090-sim" && f(&r[5]) > 0.0)
                .map(|r| (f(&r[8]).max(1e-2), f(&r[5])))
                .collect(),
        })
        .collect()
}

fn perf_bars(rows: &[Vec<String>], device: &str) -> (Vec<String>, Vec<Series>) {
    let mut groups: Vec<String> = Vec::new();
    for r in rows {
        if r[3] == device && !groups.contains(&r[0]) {
            groups.push(r[0].clone());
        }
    }
    let series = METHODS
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: groups
                .iter()
                .map(|g| {
                    let v = rows
                        .iter()
                        .find(|r| r[0] == *g && r[1] == *m && r[3] == device)
                        .map(|r| f(&r[5]))
                        .unwrap_or(0.0);
                    (0.0, v)
                })
                .collect(),
        })
        .collect();
    (groups, series)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let transcript = args
        .first()
        .map(String::as_str)
        .unwrap_or("figures_output.txt");
    let out_dir = args.get(1).map(String::as_str).unwrap_or("plots");
    std::fs::create_dir_all(out_dir).expect("create plots directory");
    let tables = parse(transcript);
    let save = |name: &str, svg: String| {
        let path = Path::new(out_dir).join(name);
        std::fs::write(&path, svg).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        println!("wrote {}", path.display());
    };

    if let Some(rows) = tables.rows.get("fig6") {
        save(
            "fig6_perf_vs_rate.svg",
            scatter(
                "Figure 6: A^2 performance vs compression rate (rtx3090-sim)",
                "compression rate",
                "GFlops",
                Scale::Log10,
                Scale::Log10,
                &perf_scatter(rows),
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig7") {
        let (groups, series) = perf_bars(rows, "rtx3090-sim");
        save(
            "fig7_a2_bars.svg",
            grouped_bars(
                "Figure 7: A^2 GFlops, 18 representative matrices (x = failed)",
                "GFlops",
                &groups,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig8") {
        let (groups, series) = perf_bars(rows, "rtx3090-sim");
        save(
            "fig8_aat_bars.svg",
            grouped_bars(
                "Figure 8: A*A^T GFlops, asymmetric matrices (x = failed)",
                "GFlops",
                &groups,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig9") {
        // matrix, method, time_ms, peak_mb (or "oom").
        let methods = ["bhSPARSE-like", "NSPARSE-like", "spECK-like", "TileSpGEMM"];
        let series: Vec<Series> = methods
            .iter()
            .map(|m| Series {
                name: m.to_string(),
                points: rows
                    .iter()
                    .filter(|r| r[1] == *m && r[2] != "oom")
                    .map(|r| (f(&r[2]).max(1e-3), f(&r[3]).max(1e-3)))
                    .collect(),
            })
            .collect();
        save(
            "fig9_memory_vs_time.svg",
            scatter(
                "Figure 9: peak memory vs completion time (A^2)",
                "completion time (ms)",
                "peak memory (MB)",
                Scale::Log10,
                Scale::Log10,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig10") {
        // matrix, step1..alloc fractions, total_ms.
        let groups: Vec<String> = rows.iter().map(|r| r[0].clone()).collect();
        let labels = ["step 1", "step 2", "step 3", "allocation"];
        let series: Vec<Series> = labels
            .iter()
            .enumerate()
            .map(|(k, l)| Series {
                name: l.to_string(),
                points: rows.iter().map(|r| (0.0, f(&r[1 + k]) * 100.0)).collect(),
            })
            .collect();
        save(
            "fig10_breakdown.svg",
            stacked_bars(
                "Figure 10: TileSpGEMM runtime breakdown",
                "% of runtime",
                &groups,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig11") {
        let groups: Vec<String> = rows.iter().map(|r| r[0].clone()).collect();
        let labels = ["CSR", "CSB-M", "CSB-I", "Tiled"];
        let series: Vec<Series> = labels
            .iter()
            .enumerate()
            .map(|(k, l)| Series {
                name: l.to_string(),
                points: rows.iter().map(|r| (0.0, f(&r[1 + k]))).collect(),
            })
            .collect();
        save(
            "fig11_format_space.svg",
            grouped_bars("Figure 11: format space cost", "MB", &groups, &series),
        );
    }
    if let Some(rows) = tables.rows.get("fig12") {
        // matrix, flops, convert_ms, spgemm_ms, ratio.
        let series = vec![
            Series {
                name: "conversion".into(),
                points: rows
                    .iter()
                    .map(|r| (f(&r[1]).max(1.0), f(&r[2]).max(1e-3)))
                    .collect(),
            },
            Series {
                name: "one TileSpGEMM".into(),
                points: rows
                    .iter()
                    .map(|r| (f(&r[1]).max(1.0), f(&r[3]).max(1e-3)))
                    .collect(),
            },
        ];
        save(
            "fig12_conversion.svg",
            scatter(
                "Figure 12: CSR->tiled conversion vs one SpGEMM",
                "flops of A^2",
                "time (ms)",
                Scale::Log10,
                Scale::Log10,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig13") {
        let groups: Vec<String> = rows.iter().map(|r| r[0].clone()).collect();
        let series = vec![
            Series {
                name: "tSparse-like".into(),
                points: rows.iter().map(|r| (0.0, f(&r[1]))).collect(),
            },
            Series {
                name: "TileSpGEMM".into(),
                points: rows.iter().map(|r| (0.0, f(&r[2]))).collect(),
            },
        ];
        save(
            "fig13_tsparse.svg",
            grouped_bars(
                "Figure 13: TileSpGEMM vs tSparse-like (both f32)",
                "GFlops",
                &groups,
                &series,
            ),
        );
    }
    if let Some(rows) = tables.rows.get("fig14") {
        // matrix, method, step1_ms..alloc_ms; groups = matrix/method pairs.
        let groups: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{} ({})",
                    r[0],
                    if r[1] == "tSparse" { "tS" } else { "Tile" }
                )
            })
            .collect();
        let labels = ["step 1", "step 2", "step 3", "allocation"];
        let series: Vec<Series> = labels
            .iter()
            .enumerate()
            .map(|(k, l)| Series {
                name: l.to_string(),
                points: rows.iter().map(|r| (0.0, f(&r[2 + k]))).collect(),
            })
            .collect();
        save(
            "fig14_tsparse_breakdown.svg",
            stacked_bars(
                "Figure 14: breakdown, tSparse-like vs TileSpGEMM",
                "time (ms)",
                &groups,
                &series,
            ),
        );
    }
    println!("done");
}
