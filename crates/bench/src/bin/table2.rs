//! Table 2: statistics of the 18 representative matrices.
//!
//! Prints the same columns as the paper — matrix, n, nnz(A), #flops of
//! `C = A²`, nnz(C), compression rate — for the synthetic stand-ins.

use tsg_bench::banner;
use tsg_gen::{matrix_stats, representative_18};

fn main() {
    banner("Table 2: representative matrix statistics (synthetic stand-ins)");
    println!(
        "{:<24} {:>8} {:>10} {:>14} {:>10} {:>8}",
        "matrix", "n", "nnz(A)", "#flops(A^2)", "nnz(C)", "rate"
    );
    println!("csv,table2,matrix,n,nnz_a,flops,nnz_c,compression_rate");
    for entry in representative_18() {
        let a = entry.build();
        let s = matrix_stats(&a, &a);
        println!(
            "{:<24} {:>8} {:>10} {:>14} {:>10} {:>8.2}",
            entry.name, s.n, s.nnz_a, s.flops, s.nnz_c, s.compression_rate
        );
        println!(
            "csv,table2,{},{},{},{},{},{:.2}",
            entry.name, s.n, s.nnz_a, s.flops, s.nnz_c, s.compression_rate
        );
    }
}
