//! Figure 10: runtime breakdown of TileSpGEMM — step 1 (tile-structure
//! SpGEMM), step 2 (per-tile symbolic), step 3 (numeric), and memory
//! allocation — on the representative matrices. The paper reports step 1
//! under ~5%, step 2 ~15%, step 3 ~70%, allocation ~20% in some cases.

use tsg_baselines::MethodKind;
use tsg_bench::{banner, measure, prepare, quick};
use tsg_gen::representative_18;
use tsg_runtime::Device;

fn main() {
    banner("Figure 10: TileSpGEMM runtime breakdown, A^2 (rtx3090-sim)");
    let device = Device::rtx3090_sim();
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9}",
        "matrix", "step1 %", "step2 %", "step3 %", "alloc %"
    );
    println!("csv,fig10,matrix,step1_frac,step2_frac,step3_frac,alloc_frac,total_ms");
    let entries = representative_18();
    let entries: Vec<_> = if quick() {
        entries.into_iter().take(4).collect()
    } else {
        entries
    };
    let mut sums = [0.0f64; 4];
    let mut count = 0usize;
    for entry in entries {
        let (prep, stats) = prepare(&entry, false);
        let m = measure(
            &entry.name,
            &prep,
            MethodKind::TileSpGemm,
            "A2",
            &device,
            &stats,
        );
        let f = m.breakdown.fractions();
        println!(
            "{:<24} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            entry.name,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
        println!(
            "csv,fig10,{},{:.4},{:.4},{:.4},{:.4},{:.3}",
            entry.name,
            f[0],
            f[1],
            f[2],
            f[3],
            m.breakdown.total().as_secs_f64() * 1e3
        );
        for k in 0..4 {
            sums[k] += f[k];
        }
        count += 1;
    }
    println!(
        "{:<24} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
        "AVERAGE",
        sums[0] / count as f64 * 100.0,
        sums[1] / count as f64 * 100.0,
        sums[2] / count as f64 * 100.0,
        sums[3] / count as f64 * 100.0
    );
    println!();
    println!("(paper: step1 <5%, step2 ~15%, step3 ~70%, allocation ~20% on some matrices)");
}
