//! Figure 6: GFlops against compression rate for the five methods over the
//! sweep dataset, `A²` and `AAᵀ`, on both simulated devices, with the linear
//! regression (in log10 of the rate) and the 3090/3060 scalability ratios.

use tsg_baselines::MethodKind;
use tsg_bench::{banner, csv_header, emit_csv, geomean, linreg, measure, prepare, quick};
use tsg_gen::fig6_sweep;
use tsg_runtime::Device;

fn main() {
    banner("Figure 6: GFlops vs compression rate (sweep dataset)");
    let d3090 = Device::rtx3090_sim();
    let d3060 = Device::rtx3060_sim();
    csv_header();

    let entries = fig6_sweep();
    let entries: Vec<_> = if quick() {
        entries.into_iter().step_by(6).collect()
    } else {
        entries
    };

    // points[method] = (log10 rate, gflops) on the 3090-sim, A².
    let mut points: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 5];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut completed = [0usize; 5];

    for (ei, entry) in entries.iter().enumerate() {
        for (op, aat) in [("A2", false), ("AAT", true)] {
            if aat && entry.symmetric {
                continue; // AAᵀ == A² structurally for symmetric matrices
            }
            let (prep, stats) = prepare(entry, aat);
            for (mi, kind) in MethodKind::all().into_iter().enumerate() {
                let m90 = measure(&entry.name, &prep, kind, op, &d3090, &stats);
                emit_csv("fig6", &m90);
                if op == "A2" {
                    if m90.elapsed.is_some() {
                        completed[mi] += 1;
                        points[mi].push((stats.compression_rate.max(1e-3).log10(), m90.gflops));
                    }
                    // Scalability: measure a subset on the 3060-sim.
                    if ei % 3 == 0 {
                        let m60 = measure(&entry.name, &prep, kind, op, &d3060, &stats);
                        emit_csv("fig6", &m60);
                        if m90.elapsed.is_some() && m60.elapsed.is_some() && m60.gflops > 0.0 {
                            ratios[mi].push(m90.gflops / m60.gflops);
                        }
                    }
                }
            }
        }
        eprintln!("fig6 progress: {}/{}", ei + 1, entries.len());
    }

    banner("Figure 6 summary (A^2, rtx3090-sim)");
    println!(
        "{:<16} {:>10} {:>12} {:>24} {:>18}",
        "method", "completed", "mean GFlops", "regression (per log10 rate)", "3090/3060 ratio"
    );
    for (mi, kind) in MethodKind::all().into_iter().enumerate() {
        let mean = geomean(points[mi].iter().map(|p| p.1));
        let reg = linreg(&points[mi]);
        let ratio = if ratios[mi].is_empty() {
            0.0
        } else {
            geomean(ratios[mi].iter().copied())
        };
        let reg_str = reg
            .map(|(s, i)| format!("{s:+.2}x {i:+.2}"))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<16} {:>10} {:>12.2} {:>24} {:>18.2}",
            kind.name(),
            completed[mi],
            mean,
            reg_str,
            ratio
        );
        println!(
            "csv,fig6-summary,{},{},{:.3},{:.3}",
            kind.name(),
            completed[mi],
            mean,
            ratio
        );
    }
    println!();
    println!("Note: on single-core hosts both simulated devices collapse to one worker, so");
    println!("the 3090/3060 ratio reflects only the memory-budget difference (EXPERIMENTS.md).");
}
