//! Figure 8: double-precision `A·Aᵀ` bars on the six asymmetric matrices of
//! the representative set (simulated RTX 3090 device).

use tsg_baselines::MethodKind;
use tsg_bench::{banner, csv_header, emit_csv, measure, prepare};
use tsg_gen::suite::asymmetric_6;
use tsg_runtime::Device;

fn main() {
    banner("Figure 8: A*A^T GFlops on the 6 asymmetric matrices (rtx3090-sim)");
    let device = Device::rtx3090_sim();
    csv_header();
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "matrix", "cuSPARSE-like", "bhSPARSE-like", "NSPARSE-like", "spECK-like", "TileSpGEMM"
    );
    for entry in asymmetric_6() {
        let (prep, stats) = prepare(&entry, true);
        let mut cells = Vec::new();
        for kind in MethodKind::all() {
            let m = measure(&entry.name, &prep, kind, "AAT", &device, &stats);
            emit_csv("fig8", &m);
            cells.push(m.gflops);
        }
        println!(
            "{:<24} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            entry.name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
}
