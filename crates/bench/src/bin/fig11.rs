//! Figure 11: space cost of the tiled data structure vs standard CSR and
//! the CSB-M / CSB-I formats on the representative matrices. The paper
//! finds the tiled format smaller than CSR on average but larger than both
//! CSB variants (it pays 16 B of row pointers + 32 B of masks per tile).

use tsg_bench::banner;
use tsg_gen::representative_18;
use tsg_matrix::{CsbI, CsbM, Footprint, TileMatrix};

fn main() {
    banner("Figure 11: format space cost (MB)");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "matrix", "CSR", "CSB-M", "CSB-I", "Tiled"
    );
    println!("csv,fig11,matrix,csr_mb,csb_m_mb,csb_i_mb,tiled_mb");
    let mut totals = [0.0f64; 4];
    for entry in representative_18() {
        let a = entry.build();
        let tiled = TileMatrix::from_csr(&a);
        let csb_m = CsbM::from_csr(&a);
        let csb_i = CsbI::from_csr(&a);
        let mb = [
            a.bytes() as f64 / 1e6,
            csb_m.bytes() as f64 / 1e6,
            csb_i.bytes() as f64 / 1e6,
            tiled.bytes() as f64 / 1e6,
        ];
        for (t, v) in totals.iter_mut().zip(mb.iter()) {
            *t += v;
        }
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            entry.name, mb[0], mb[1], mb[2], mb[3]
        );
        println!(
            "csv,fig11,{},{:.3},{:.3},{:.3},{:.3}",
            entry.name, mb[0], mb[1], mb[2], mb[3]
        );
    }
    println!(
        "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "TOTAL", totals[0], totals[1], totals[2], totals[3]
    );
    println!();
    println!(
        "Paper: tiled averages {:.0} MB less than CSR but more than CSB-M/CSB-I;",
        31.28
    );
    println!("our per-matrix rows show the same ordering by structure class.");
}
