//! Figure 7: double-precision `A²` performance bars on the 18
//! representative matrices (simulated RTX 3090 device). Methods that exceed
//! the device memory budget report 0.00, the paper's failure convention.

use tsg_baselines::MethodKind;
use tsg_bench::{banner, csv_header, emit_csv, measure, prepare};
use tsg_gen::representative_18;
use tsg_runtime::Device;

fn main() {
    banner("Figure 7: A^2 GFlops on 18 representative matrices (rtx3090-sim)");
    let device = Device::rtx3090_sim();
    csv_header();
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "matrix", "cuSPARSE-like", "bhSPARSE-like", "NSPARSE-like", "spECK-like", "TileSpGEMM"
    );
    let entries = representative_18();
    let entries: Vec<_> = if tsg_bench::quick() {
        entries.into_iter().take(4).collect()
    } else {
        entries
    };
    for entry in entries {
        let (prep, stats) = prepare(&entry, false);
        let mut cells = Vec::new();
        for kind in MethodKind::all() {
            let m = measure(&entry.name, &prep, kind, "A2", &device, &stats);
            emit_csv("fig7", &m);
            cells.push(m.gflops);
        }
        println!(
            "{:<24} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            entry.name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!();
    println!("(0.00 = method exceeded the simulated device memory budget, the paper's failure convention)");
}
