//! Figure 13: TileSpGEMM vs tSparse on the 16-matrix tSparse dataset, both
//! in the reduced precision of §4.7 (`f32` standing in for the
//! half-precision tensor-core path). The paper reports TileSpGEMM winning
//! on all 16 with a 1.98x geometric-mean and 4.04x maximum speedup.

use tilespgemm_core::Config;
use tsg_baselines::tsparse;
use tsg_bench::{banner, geomean, gflops, quick};
use tsg_gen::tsparse_16;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

fn main() {
    banner("Figure 13: TileSpGEMM vs tSparse-like (both f32), A^2");
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "matrix", "tSparse GF", "TileSpGEMM GF", "speedup"
    );
    println!("csv,fig13,matrix,tsparse_gflops,tile_gflops,speedup");
    let entries = tsparse_16();
    let entries: Vec<_> = if quick() {
        entries.into_iter().take(4).collect()
    } else {
        entries
    };
    let mut speedups = Vec::new();
    for entry in entries {
        let a64 = entry.build();
        let flops = a64.spgemm_flops(&a64);
        // Half-precision inputs (binary16-quantised), f32 arithmetic — the
        // paper's hh->s tensor-core precision pairing, applied to both
        // methods equally.
        let a = tsg_matrix::halfsim::quantize_csr(&a64);
        let ta = TileMatrix::from_csr(&a);

        let start = std::time::Instant::now();
        let ts = tsparse::multiply_tiled(&ta, &ta, &MemTracker::new()).unwrap();
        let t_tsparse = start.elapsed();

        let start = std::time::Instant::now();
        let tile =
            tilespgemm_core::multiply(&ta, &ta, &Config::default(), &MemTracker::new()).unwrap();
        let t_tile = start.elapsed();
        assert_eq!(
            ts.c.to_csr().drop_numeric_zeros().colidx,
            tile.c.to_csr().drop_numeric_zeros().colidx,
            "methods disagree on {}",
            entry.name
        );

        let gf_ts = gflops(flops, t_tsparse);
        let gf_tile = gflops(flops, t_tile);
        let speedup = gf_tile / gf_ts.max(1e-12);
        speedups.push(speedup);
        println!(
            "{:<20} {:>14.2} {:>14.2} {:>9.2}x",
            entry.name, gf_ts, gf_tile, speedup
        );
        println!(
            "csv,fig13,{},{:.3},{:.3},{:.3}",
            entry.name, gf_ts, gf_tile, speedup
        );
    }
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    println!();
    println!(
        "geomean speedup {:.2}x, max {:.2}x (paper: 1.98x geomean, 4.04x max)",
        geomean(speedups),
        max
    );
}
