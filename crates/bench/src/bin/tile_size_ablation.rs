//! Tile-size ablation (§3.2): why 16×16?
//!
//! The paper argues 16 is the unique dimension saturating the narrow types
//! (two 4-bit locals per `u8`, `u8` row pointers, `u16` masks) — "other tile
//! sizes (such as 4-by-4 and 8-by-8) cannot saturate \[the\] 8-bit data type
//! and will bring more complex data packing". This harness quantifies the
//! claim on the representative dataset: modelled index bytes of the tiled
//! format at dimensions 4–64.

use tsg_bench::banner;
use tsg_gen::representative_18;
use tsg_matrix::tile_model::sweep_dims;

fn main() {
    banner("Tile-size ablation: modelled tiled-format bytes by dimension");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "matrix", "4x4 (MB)", "8x8 (MB)", "16x16 (MB)", "32x32 (MB)", "64x64 (MB)", "best"
    );
    println!("csv,tile-size,matrix,mb_4,mb_8,mb_16,mb_32,mb_64,best_dim");
    let mut wins = std::collections::BTreeMap::<usize, usize>::new();
    for entry in representative_18() {
        let a = entry.build();
        let sweep = sweep_dims(&a);
        let best = sweep.iter().min_by_key(|&&(_, _, b)| b).unwrap().0;
        *wins.entry(best).or_insert(0) += 1;
        let mb: Vec<f64> = sweep.iter().map(|&(_, _, b)| b as f64 / 1e6).collect();
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>6}",
            entry.name, mb[0], mb[1], mb[2], mb[3], mb[4], best
        );
        println!(
            "csv,tile-size,{},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
            entry.name, mb[0], mb[1], mb[2], mb[3], mb[4], best
        );
    }
    println!();
    for (dim, count) in wins {
        println!("{dim}x{dim} is space-optimal on {count} of 18 matrices");
    }
    println!("(the paper fixes 16x16: saturated u8 locals/pointers and u16 masks, no repacking)");
}
