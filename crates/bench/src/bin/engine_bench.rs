//! Service-level benchmark of the serving stack (`tsg-serve` over
//! `tsg-engine`): a mixed 20-job burst fired through a scheduler session at
//! an engine with a deliberately constrained device budget and queue depth.
//!
//! The burst is the same shape the engine-only bench used to shed most of:
//! under the scheduler nothing is dropped. A full session queue answers
//! with a backpressure hint (the bench resubmits, as a client would). The
//! big `DxD` product — whose old constant-compression estimate overflowed
//! the budget and forced deferred-solo admission — is now admitted
//! directly: the sampled symbolic estimator measures its compression and
//! its band-upper bound fits. Deferred admission stays wired in as the
//! backstop but this burst never trips it. The headline is therefore
//! throughput (`jobs_per_s`) at a zero shed rate and zero deferrals.
//!
//! Writes `BENCH_engine.json` at the workspace root: per-job queue wait,
//! execution wall time, per-step breakdown, cache hits/conversions, the
//! engine's final statistics (cache hit rate, evictions, shed/rejected
//! counts — both zero by construction), the scheduler's statistics
//! (hints, deferrals, queue high-water), the observability counter totals
//! (including the `est_err_*` estimator-accuracy buckets, one tick per
//! completed multiply — plain or masked — and the `est_sample_*` sampler
//! counters), and a representative per-job span tree (the engine runs
//! with `profile: true`).
//!
//! A second section exercises the op-expression API on a fresh engine: a
//! chained `A·B·C` job and an `A^6` power job whose intermediates stay
//! resident tiled handles (zero conversions, zero CSR derivations)
//! against the v2-client round-trip baseline (materialize each
//! intermediate to CSR, re-register, reconvert), and a masked triangle
//! count `A·A⟨A⟩` against the full product followed by a client-side
//! Hadamard.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin engine_bench
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tsg_engine::json::{obj, Value};
use tsg_engine::{Engine, EngineConfig, MatrixId};
use tsg_gen::suite::GenSpec;
use tsg_runtime::{Breakdown, Device, SpanNode};
use tsg_serve::{SchedConfig, Scheduler, ServeTicket, Submission, SubmitSpec};

/// Outcome row for one submitted job.
struct JobRow {
    label: &'static str,
    outcome: String,
    queue_wait_ms: f64,
    exec_ms: f64,
    wall_ms: f64,
    cache_hits: u64,
    conversions: u64,
    peak_bytes: usize,
    est_bytes: usize,
    /// Admission-time nnz(C) prediction (sampled point estimate).
    est_nnz_c: usize,
    /// Sampled 95% band edges; equal to `est_nnz_c` when the sample was
    /// exact, `(0, 0)` when the job had no sampled estimate.
    est_nnz_lo: usize,
    est_nnz_hi: usize,
    /// Whether a sampled symbolic estimate backed the admission decision.
    sampled: bool,
    /// Actual structural output nnz, for predicted-vs-actual comparison.
    nnz_c: usize,
    breakdown: Breakdown,
}

fn row_to_json(r: &JobRow) -> Value {
    obj([
        ("job", r.label.into()),
        ("outcome", r.outcome.as_str().into()),
        ("queue_wait_ms", Value::Num(r.queue_wait_ms)),
        ("exec_ms", Value::Num(r.exec_ms)),
        ("wall_ms", Value::Num(r.wall_ms)),
        (
            "step1_ms",
            Value::Num(r.breakdown.step1.as_secs_f64() * 1e3),
        ),
        (
            "step2_ms",
            Value::Num(r.breakdown.step2.as_secs_f64() * 1e3),
        ),
        (
            "step3_ms",
            Value::Num(r.breakdown.step3.as_secs_f64() * 1e3),
        ),
        (
            "alloc_ms",
            Value::Num(r.breakdown.alloc.as_secs_f64() * 1e3),
        ),
        ("cache_hits", r.cache_hits.into()),
        ("conversions", r.conversions.into()),
        ("peak_bytes", r.peak_bytes.into()),
        ("est_bytes", r.est_bytes.into()),
        ("est_nnz_c", r.est_nnz_c.into()),
        ("est_nnz_lo", r.est_nnz_lo.into()),
        ("est_nnz_hi", r.est_nnz_hi.into()),
        ("sampled", Value::Bool(r.sampled)),
        ("nnz_c", r.nnz_c.into()),
    ])
}

fn spans_to_json(nodes: &[SpanNode]) -> Value {
    Value::Arr(
        nodes
            .iter()
            .map(|n| {
                obj([
                    ("name", n.name.into()),
                    ("ms", Value::Num(n.elapsed.as_secs_f64() * 1e3)),
                    ("children", spans_to_json(&n.children)),
                ])
            })
            .collect(),
    )
}

fn main() {
    // A 3060-class device with its budget squeezed to the point where the
    // old constant-compression estimate of the largest product overflowed
    // it (the deferred-admission case). The sampled estimator's band-upper
    // bound fits, so the same job now admits directly; a shallow engine
    // queue still overflows the burst into the session queue so the
    // backpressure path fires.
    let mut device = Device::rtx3060_sim();
    device.mem_budget = 80 << 20;
    let cfg = EngineConfig {
        cache_bytes: 8 << 20,
        device,
        workers: 2,
        queue_depth: 5,
        default_timeout: None,
        base_config: Default::default(),
        profile: true,
        sample_rate: tilespgemm_core::sample::DEFAULT_SAMPLE_RATE,
    };
    let sched = Scheduler::new(Arc::new(Engine::new(cfg)), SchedConfig::default());
    let engine = Arc::clone(sched.engine());
    let sid = sched
        .open_session("bench", 1.0, Some(8))
        .expect("fresh scheduler accepts sessions");

    // Operands: the FEM suite entry and a same-shaped scatter matrix mix
    // freely; the big grid stencil's square is the product the old
    // estimator priced at ~2.1x the budget — sampled, it fits.
    let fem = tsg_gen::suite::by_name("fem-00")
        .expect("fem-00 exists")
        .build();
    let n = fem.nrows;
    let (a, _) = engine.register(fem);
    let (b, _) = engine.register(
        GenSpec::Scatter {
            n,
            per_row: 4,
            seed: 11,
        }
        .build(),
    );
    let (d, _) = engine.register(
        GenSpec::Grid27 {
            nx: 32,
            ny: 32,
            nz: 32,
        }
        .build(),
    );
    for (name, id) in [("A(fem-00)", a), ("B(scatter-4)", b), ("D(grid27-32)", d)] {
        let e = engine.estimate(id, id).expect("registered");
        println!(
            "{name}: {id} — est {:.1} MiB for its square (budget {:.1} MiB)",
            e.est_bytes as f64 / (1 << 20) as f64,
            engine.device().mem_budget as f64 / (1 << 20) as f64,
        );
    }

    // The burst: 20 jobs pushed through the session back-to-back. A full
    // queue answers with a hint and the bench resubmits after the named
    // delay — exactly the client contract — so every job is eventually
    // admitted and nothing sheds.
    let workload: [(&'static str, MatrixId, MatrixId); 5] = [
        ("AxA", a, a),
        ("AxB", a, b),
        ("BxA", b, a),
        ("BxB", b, b),
        ("DxD", d, d),
    ];
    let mut tickets: Vec<(&'static str, ServeTicket)> = Vec::new();
    let mut hints = 0u64;
    let start = Instant::now();
    for round in 0..4 {
        for (label, x, y) in workload {
            let mut spec = SubmitSpec::new(x, y);
            spec.timeout = Some(Duration::from_secs(300)); // deadlock backstop
            loop {
                match sched
                    .submit(sid, vec![spec.clone()])
                    .expect("session stays open")
                {
                    Submission::Queued(mut t) => {
                        tickets.push((label, t.remove(0)));
                        break;
                    }
                    Submission::Backpressure(h) => {
                        hints += 1;
                        std::thread::sleep(h.retry_after.min(Duration::from_millis(25)));
                    }
                }
            }
        }
        println!(
            "round {round}: {} admitted, {hints} backpressure hints ridden",
            tickets.len()
        );
    }

    let mut rows: Vec<JobRow> = Vec::new();
    for (label, t) in &tickets {
        match t.wait() {
            Ok(done) => {
                let r = &done.report;
                let sample = r.estimate.sample;
                rows.push(JobRow {
                    label,
                    outcome: "completed".to_string(),
                    queue_wait_ms: r.queue_wait.as_secs_f64() * 1e3,
                    exec_ms: r.exec.as_secs_f64() * 1e3,
                    wall_ms: (r.queue_wait + r.exec).as_secs_f64() * 1e3,
                    cache_hits: u64::from(r.cache_hits),
                    conversions: u64::from(r.conversions),
                    peak_bytes: r.peak_bytes,
                    est_bytes: r.estimate.est_bytes,
                    est_nnz_c: r.estimate.est_nnz_c,
                    est_nnz_lo: sample.map_or(0, |s| s.nnz_lo),
                    est_nnz_hi: sample.map_or(0, |s| s.nnz_hi),
                    sampled: sample.is_some(),
                    nnz_c: r.nnz_c,
                    breakdown: r.breakdown,
                });
            }
            Err(e) => rows.push(JobRow {
                label,
                outcome: e.code().to_string(),
                queue_wait_ms: 0.0,
                exec_ms: 0.0,
                wall_ms: 0.0,
                cache_hits: 0,
                conversions: 0,
                peak_bytes: 0,
                est_bytes: 0,
                est_nnz_c: 0,
                est_nnz_lo: 0,
                est_nnz_hi: 0,
                sampled: false,
                nnz_c: 0,
                breakdown: Breakdown::default(),
            }),
        }
    }
    let wall = start.elapsed();

    let s = engine.stats();
    let serve = sched.stats();
    let metrics = engine.metrics();
    // Every completed job recorded a span tree whose "job" root nests the
    // three pipeline steps and the allocation phase.
    let collector = engine.collector().expect("engine profiles this burst");
    let recorded_jobs = collector.jobs();
    let sample_spans = recorded_jobs
        .iter()
        .map(|&j| collector.span_tree(j))
        .find(|tree| {
            tree.iter().any(|root| {
                root.name == "job"
                    && ["step1", "step2", "step3", "alloc"]
                        .iter()
                        .all(|p| root.child(p).is_some())
            })
        })
        .expect("at least one job has a full job -> step1/step2/step3/alloc tree");
    sched.shutdown(Duration::from_secs(30));

    // ---- Op-expression workloads ------------------------------------
    // A fresh engine (default budget, no profiler) so the registry
    // counters below measure only these jobs. Banded operands are the
    // regime chaining targets: multiplies are cheap relative to the fat
    // intermediates a round-tripping client keeps materializing.
    let expr = Engine::new(EngineConfig::default());
    let n2 = 120_000;
    let band = |seed| GenSpec::Banded {
        n: n2,
        bandwidth: 8,
        per_row: 6,
        seed,
    };
    let fem2 = tsg_gen::suite::by_name("fem-00")
        .expect("fem-00 exists")
        .build();
    let adj = tsg_matrix::ops::symmetrize_pattern(&tsg_matrix::ops::remove_diagonal(&fem2))
        .map_values(|_| 1.0);
    let (xa, _) = expr.register(band(5).build());
    let (xb, _) = expr.register(band(9).build());
    let (xc, _) = expr.register(band(13).build());
    let (xm, _) = expr.register(adj.clone());
    for id in [xa, xb, xc, xm] {
        expr.convert(id).expect("pre-warm tiled operands");
    }

    // Chained A·B·C (one job, the intermediate held as a resident tiled
    // handle — no conversions, no CSR derivations) against the round-trip
    // baseline a v2 client had to run: materialize the intermediate to
    // CSR, re-register it, reconvert for the next hop, drop the throwaway
    // registration. The two paths interleave in one loop so machine drift
    // hits both equally; best of 5 each.
    let mut chain_ms = f64::MAX;
    let mut chain = None;
    let mut chain_derivations = 0;
    let mut roundtrip_ms = f64::MAX;
    let mut roundtrip = None;
    for _ in 0..5 {
        let before = expr.stats().registry.csr_derivations;
        let t0 = Instant::now();
        let r = expr
            .multiply_now(tsg_engine::JobSpec::chain([xa, xb, xc]))
            .expect("chained job runs");
        chain_ms = chain_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        chain_derivations += expr.stats().registry.csr_derivations - before;
        chain = Some(r);

        let t0 = Instant::now();
        let ab = expr
            .multiply_now(tsg_engine::JobSpec::multiply(xa, xb))
            .expect("first hop");
        let (ab_id, _) = expr.register(ab.c.to_csr());
        let r = expr
            .multiply_now(tsg_engine::JobSpec::multiply(ab_id, xc))
            .expect("second hop");
        roundtrip_ms = roundtrip_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        roundtrip = Some(r);
        expr.unregister(ab_id).expect("intermediate was registered");
    }
    let chain = chain.expect("five chain runs");
    let roundtrip = roundtrip.expect("five round-trip runs");
    assert!(
        chain
            .c
            .to_csr()
            .drop_numeric_zeros()
            .approx_eq_ignoring_zeros(&roundtrip.c.to_csr().drop_numeric_zeros(), 1e-9),
        "chained and round-tripped products agree"
    );

    // A^6 as one Power job (five links, four resident intermediates)
    // against the v2 client's repeated square-and-re-register loop. The
    // longer the chain, the more materializations the expression saves.
    const POWER_K: u32 = 6;
    let mut power_ms = f64::MAX;
    let mut power = None;
    let mut power_rt_ms = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = expr
            .multiply_now(tsg_engine::JobSpec::power(xa, POWER_K))
            .expect("power job runs");
        power_ms = power_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        power = Some(r);

        let t0 = Instant::now();
        let mut cur = xa;
        let mut throwaway = Vec::new();
        for _ in 0..POWER_K - 1 {
            let hop = expr
                .multiply_now(tsg_engine::JobSpec::multiply(cur, xa))
                .expect("power hop runs");
            let (id, _) = expr.register(hop.c.to_csr());
            throwaway.push(id);
            cur = id;
        }
        power_rt_ms = power_rt_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        for id in throwaway {
            let _ = expr.unregister(id);
        }
    }
    let power = power.expect("three power runs");

    // Masked triangle count A·A⟨A⟩ vs the full product plus a client-side
    // Hadamard with the adjacency pattern. Best of 3 each.
    let mut masked_ms = f64::MAX;
    let mut masked = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = expr
            .multiply_now(tsg_engine::JobSpec::multiply(xm, xm).mask(xm))
            .expect("masked multiply runs");
        masked_ms = masked_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        masked = Some(r);
    }
    let masked = masked.expect("three masked runs");
    let mut full_ms = f64::MAX;
    let mut full_nnz = 0usize;
    let mut triangles_baseline = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = expr
            .multiply_now(tsg_engine::JobSpec::multiply(xm, xm))
            .expect("full multiply runs");
        let had = tsg_matrix::ops::hadamard(&r.c.to_csr(), &adj);
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        full_nnz = r.nnz_c;
        triangles_baseline = tsg_matrix::ops::sum_all(&had) / 6.0;
    }
    let triangles = tsg_matrix::ops::sum_all(&masked.c.to_csr()) / 6.0;
    expr.shutdown();
    println!(
        "chained A*B*C: {chain_ms:.2}ms handle-to-handle vs {roundtrip_ms:.2}ms round-trip \
         ({:.2}x); A^{POWER_K}: {power_ms:.2}ms vs {power_rt_ms:.2}ms ({:.2}x); \
         triangles {triangles:.0}: masked {masked_ms:.2}ms vs full+hadamard {full_ms:.2}ms",
        roundtrip_ms / chain_ms,
        power_rt_ms / power_ms
    );

    let lookups = s.registry.cache_hits + s.registry.cache_misses;
    let hit_rate = if lookups > 0 {
        s.registry.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    let completed = rows.iter().filter(|r| r.outcome == "completed").count();
    let jobs_per_s = completed as f64 / wall.as_secs_f64();
    let shed_rate = if s.submitted > 0 {
        s.shed as f64 / s.submitted as f64
    } else {
        0.0
    };
    let est_err_total: u64 = metrics
        .iter()
        .filter(|(_, name, _)| name.starts_with("est_err_"))
        .map(|(_, _, total)| total)
        .sum();
    println!(
        "{} jobs in {:.2}s: {completed} completed ({jobs_per_s:.2} jobs/s), \
         {} rejected, {} shed (shed rate {shed_rate:.2}), {hints} hints, \
         {} deferred; cache hit rate {:.2}",
        rows.len(),
        wall.as_secs_f64(),
        s.rejected,
        s.shed,
        serve.deferred,
        hit_rate
    );

    let report = obj([
        (
            "config",
            obj([
                ("device", engine.device().name.as_str().into()),
                ("budget_bytes", engine.device().mem_budget.into()),
                ("cache_bytes", (8usize << 20).into()),
                ("workers", 2u64.into()),
                ("queue_depth", 5u64.into()),
                ("session_depth", 8u64.into()),
                ("jobs_submitted", 20u64.into()),
            ]),
        ),
        ("jobs_per_s", Value::Num(jobs_per_s)),
        ("wall_s", Value::Num(wall.as_secs_f64())),
        ("shed_rate", Value::Num(shed_rate)),
        ("jobs", Value::Arr(rows.iter().map(row_to_json).collect())),
        (
            "stats",
            obj([
                ("submitted", s.submitted.into()),
                ("admitted", s.admitted.into()),
                ("completed", s.completed.into()),
                ("failed", s.failed.into()),
                ("rejected", s.rejected.into()),
                ("shed", s.shed.into()),
                ("timed_out", s.timed_out.into()),
                (
                    "queue_wait_ms_total",
                    Value::Num(s.queue_wait_total.as_secs_f64() * 1e3),
                ),
                (
                    "exec_ms_total",
                    Value::Num(s.exec_total.as_secs_f64() * 1e3),
                ),
                ("conversions", s.registry.conversions.into()),
                ("cache_hits", s.registry.cache_hits.into()),
                ("cache_misses", s.registry.cache_misses.into()),
                ("cache_hit_rate", Value::Num(hit_rate)),
                ("evictions", s.registry.evictions.into()),
            ]),
        ),
        ("serve", tsg_serve::wire::serve_stats_json(&serve)),
        (
            "chained",
            obj([
                ("workload", "banded-8x6(120k): A * B * C".into()),
                ("chain_ms", Value::Num(chain_ms)),
                ("roundtrip_ms", Value::Num(roundtrip_ms)),
                ("speedup", Value::Num(roundtrip_ms / chain_ms)),
                ("links", u64::from(chain.links).into()),
                ("intermediates", (chain.intermediates.len() as u64).into()),
                ("link_conversions", u64::from(chain.conversions).into()),
                ("csr_derivations", chain_derivations.into()),
                ("nnz_c", chain.nnz_c.into()),
            ]),
        ),
        (
            "power",
            obj([
                ("workload", "banded-8x6(120k): A^6".into()),
                ("chain_ms", Value::Num(power_ms)),
                ("roundtrip_ms", Value::Num(power_rt_ms)),
                ("speedup", Value::Num(power_rt_ms / power_ms)),
                ("links", u64::from(power.links).into()),
                ("intermediates", (power.intermediates.len() as u64).into()),
                ("link_conversions", u64::from(power.conversions).into()),
                ("nnz_c", power.nnz_c.into()),
            ]),
        ),
        (
            "triangle",
            obj([
                ("workload", "adj(fem-00): count = sum(A*A<A>)/6".into()),
                ("masked_ms", Value::Num(masked_ms)),
                ("full_hadamard_ms", Value::Num(full_ms)),
                ("speedup", Value::Num(full_ms / masked_ms)),
                ("triangles", Value::Num(triangles)),
                ("masked_nnz", masked.nnz_c.into()),
                ("full_nnz", full_nnz.into()),
            ]),
        ),
        (
            "counters",
            Value::Obj(
                metrics
                    .iter()
                    .map(|(_, name, total)| (name.to_string(), total.into()))
                    .collect(),
            ),
        ),
        ("sample_spans", spans_to_json(&sample_spans)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_engine.json");
    println!("wrote {path}");

    assert_eq!(rows.len(), 20, "every submission is accounted for");
    assert_eq!(
        completed, 20,
        "reservation-gated admission completes the whole burst the engine \
         used to shed"
    );
    assert_eq!(s.shed, 0, "backpressure replaced queue-full shedding");
    assert_eq!(
        s.rejected, 0,
        "deferred admission replaced up-front rejection"
    );
    assert_eq!(
        serve.deferred, 0,
        "the sampled estimate admits the DxD product directly; deferred \
         admission stays an unused backstop in this burst"
    );
    assert!(
        rows.iter()
            .filter(|r| r.label == "DxD")
            .all(|r| r.outcome == "completed"),
        "every DxD-class job completes under the squeezed budget without \
         the deferred-solo fallback"
    );
    for r in rows.iter().filter(|r| r.outcome == "completed") {
        assert!(
            r.sampled,
            "completed multiply {} carries a sampled estimate",
            r.label
        );
        assert!(
            r.est_nnz_c <= r.nnz_c.saturating_mul(4).max(64)
                && r.est_nnz_c.saturating_mul(4).max(64) >= r.nnz_c,
            "{}: sampled prediction {} vs actual {} outside the 4x sanity band",
            r.label,
            r.est_nnz_c,
            r.nnz_c
        );
    }
    assert_eq!(
        est_err_total, s.completed,
        "every completed job ticks exactly one estimator-error bucket"
    );
    assert_eq!(
        s.device_bytes_in_use, 0,
        "device tracker drained back to zero"
    );
    assert!(
        metrics.get(tsg_runtime::Counter::TilesVisited) > 0,
        "the burst visited tiles"
    );
    assert!(
        metrics.get(tsg_runtime::Counter::BytesAlloc)
            >= metrics.get(tsg_runtime::Counter::BytesFreed),
        "alloc bytes dominate freed bytes"
    );
    assert_eq!(chain.links, 2, "A*B*C folds as two links");
    assert_eq!(
        chain.intermediates.len(),
        1,
        "the single intermediate comes back as a registry handle"
    );
    assert_eq!(
        chain.conversions, 0,
        "pre-warmed chain converts nothing — intermediates stay tiled"
    );
    assert_eq!(
        chain_derivations, 0,
        "the chained path never materializes an intermediate CSR"
    );
    assert!(
        chain_ms < roundtrip_ms,
        "handle-to-handle chaining beats the CSR round-trip \
         ({chain_ms:.2}ms vs {roundtrip_ms:.2}ms)"
    );
    assert_eq!(power.links, POWER_K - 1, "A^6 folds as five links");
    assert_eq!(
        power.intermediates.len(),
        POWER_K as usize - 2,
        "every non-final power intermediate comes back as a handle"
    );
    assert!(
        power_ms < power_rt_ms,
        "the power chain beats square-and-re-register \
         ({power_ms:.2}ms vs {power_rt_ms:.2}ms)"
    );
    assert!(
        (triangles - triangles_baseline).abs() <= 1e-6 * triangles.abs().max(1.0),
        "masked and full-then-Hadamard triangle counts agree \
         ({triangles} vs {triangles_baseline})"
    );
    assert!(
        masked.nnz_c <= full_nnz,
        "the structural mask prunes the product pattern"
    );
}
