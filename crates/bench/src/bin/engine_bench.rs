//! Service-level benchmark of the resident engine (`tsg-engine`): a mixed
//! 20-job workload fired at an engine with a deliberately constrained device
//! budget and queue depth, so the run exercises every admission outcome —
//! completed jobs (with registry cache hits after the first conversion),
//! estimate-based rejections, and queue-full shedding — without deadlocking.
//!
//! Writes `BENCH_engine.json` at the workspace root: per-job queue wait,
//! execution wall time, per-step breakdown, cache hits/conversions, the
//! engine's final statistics snapshot (cache hit rate, evictions,
//! shed/rejected counts), the observability counter totals of the burst,
//! and a representative per-job span tree (the engine runs with
//! `profile: true`, so every job records job → step1/step2/step3/alloc).
//!
//! ```text
//! cargo run --release -p tsg-bench --bin engine_bench
//! ```

use std::time::Duration;

use tsg_engine::json::{obj, Value};
use tsg_engine::{Engine, EngineConfig, JobSpec, JobTicket, MatrixId};
use tsg_gen::suite::GenSpec;
use tsg_runtime::{Breakdown, Device, SpanNode};

/// Outcome row for one submitted job.
struct JobRow {
    label: &'static str,
    outcome: String,
    queue_wait_ms: f64,
    exec_ms: f64,
    wall_ms: f64,
    cache_hits: u64,
    conversions: u64,
    peak_bytes: usize,
    est_bytes: usize,
    breakdown: Breakdown,
}

fn row_to_json(r: &JobRow) -> Value {
    obj([
        ("job", r.label.into()),
        ("outcome", r.outcome.as_str().into()),
        ("queue_wait_ms", Value::Num(r.queue_wait_ms)),
        ("exec_ms", Value::Num(r.exec_ms)),
        ("wall_ms", Value::Num(r.wall_ms)),
        (
            "step1_ms",
            Value::Num(r.breakdown.step1.as_secs_f64() * 1e3),
        ),
        (
            "step2_ms",
            Value::Num(r.breakdown.step2.as_secs_f64() * 1e3),
        ),
        (
            "step3_ms",
            Value::Num(r.breakdown.step3.as_secs_f64() * 1e3),
        ),
        (
            "alloc_ms",
            Value::Num(r.breakdown.alloc.as_secs_f64() * 1e3),
        ),
        ("cache_hits", r.cache_hits.into()),
        ("conversions", r.conversions.into()),
        ("peak_bytes", r.peak_bytes.into()),
        ("est_bytes", r.est_bytes.into()),
    ])
}

fn spans_to_json(nodes: &[SpanNode]) -> Value {
    Value::Arr(
        nodes
            .iter()
            .map(|n| {
                obj([
                    ("name", n.name.into()),
                    ("ms", Value::Num(n.elapsed.as_secs_f64() * 1e3)),
                    ("children", spans_to_json(&n.children)),
                ])
            })
            .collect(),
    )
}

fn main() {
    // A 3060-class device with its budget squeezed so the largest product's
    // estimate overflows it (rejected up front) while the medium products
    // fit; a shallow queue so the burst sheds; two workers so shedding and
    // progress coexist.
    let mut device = Device::rtx3060_sim();
    device.mem_budget = 80 << 20;
    let cfg = EngineConfig {
        cache_bytes: 8 << 20,
        device,
        workers: 2,
        queue_depth: 5,
        default_timeout: None,
        base_config: Default::default(),
        profile: true,
    };
    let engine = Engine::new(cfg);

    // Three same-shaped operands so products mix freely: the FEM suite
    // entry, a sparser scatter matrix, and a denser scatter matrix whose
    // square blows the squeezed budget.
    let fem = tsg_gen::suite::by_name("fem-00")
        .expect("fem-00 exists")
        .build();
    let n = fem.nrows;
    let (a, _) = engine.register(fem);
    let (b, _) = engine.register(
        GenSpec::Scatter {
            n,
            per_row: 4,
            seed: 11,
        }
        .build(),
    );
    let (d, _) = engine.register(
        GenSpec::Scatter {
            n,
            per_row: 60,
            seed: 13,
        }
        .build(),
    );
    for (name, id) in [("A(fem-00)", a), ("B(scatter-4)", b), ("D(scatter-60)", d)] {
        let e = engine.estimate(id, id).expect("registered");
        println!(
            "{name}: {id} — est {:.1} MiB for its square (budget {:.1} MiB)",
            e.est_bytes as f64 / (1 << 20) as f64,
            engine.device().mem_budget as f64 / (1 << 20) as f64,
        );
    }

    // The burst: 20 jobs submitted back-to-back. D·D is over budget by
    // construction; the rest race two workers through a depth-5 queue.
    let workload: [(&'static str, MatrixId, MatrixId); 5] = [
        ("AxA", a, a),
        ("AxB", a, b),
        ("BxA", b, a),
        ("BxB", b, b),
        ("DxD", d, d),
    ];
    let mut rows: Vec<JobRow> = Vec::new();
    let mut tickets: Vec<(&'static str, JobTicket)> = Vec::new();
    for round in 0..4 {
        for (label, x, y) in workload {
            let mut spec = JobSpec::new(x, y);
            spec.timeout = Some(Duration::from_secs(60)); // deadlock backstop
            match engine.submit(spec) {
                Ok(t) => tickets.push((label, t)),
                Err(e) => rows.push(JobRow {
                    label,
                    outcome: e.code().to_string(),
                    queue_wait_ms: 0.0,
                    exec_ms: 0.0,
                    wall_ms: 0.0,
                    cache_hits: 0,
                    conversions: 0,
                    peak_bytes: 0,
                    est_bytes: 0,
                    breakdown: Breakdown::default(),
                }),
            }
        }
        println!(
            "round {round}: {} admitted, {} refused so far",
            tickets.len(),
            rows.len()
        );
    }

    for (label, t) in &tickets {
        match t.wait() {
            Ok(r) => rows.push(JobRow {
                label,
                outcome: "completed".to_string(),
                queue_wait_ms: r.queue_wait.as_secs_f64() * 1e3,
                exec_ms: r.exec.as_secs_f64() * 1e3,
                wall_ms: (r.queue_wait + r.exec).as_secs_f64() * 1e3,
                cache_hits: u64::from(r.cache_hits),
                conversions: u64::from(r.conversions),
                peak_bytes: r.peak_bytes,
                est_bytes: r.estimate.est_bytes,
                breakdown: r.breakdown,
            }),
            Err(e) => rows.push(JobRow {
                label,
                outcome: e.code().to_string(),
                queue_wait_ms: 0.0,
                exec_ms: 0.0,
                wall_ms: 0.0,
                cache_hits: 0,
                conversions: 0,
                peak_bytes: 0,
                est_bytes: 0,
                breakdown: Breakdown::default(),
            }),
        }
    }

    let s = engine.stats();
    let metrics = engine.metrics();
    // Every completed job recorded a span tree whose "job" root nests the
    // three pipeline steps and the allocation phase.
    let collector = engine.collector().expect("engine profiles this burst");
    let recorded_jobs = collector.jobs();
    let sample_spans = recorded_jobs
        .iter()
        .map(|&j| collector.span_tree(j))
        .find(|tree| {
            tree.iter().any(|root| {
                root.name == "job"
                    && ["step1", "step2", "step3", "alloc"]
                        .iter()
                        .all(|p| root.child(p).is_some())
            })
        })
        .expect("at least one job has a full job -> step1/step2/step3/alloc tree");
    engine.shutdown();
    let lookups = s.registry.cache_hits + s.registry.cache_misses;
    let hit_rate = if lookups > 0 {
        s.registry.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    let completed = rows.iter().filter(|r| r.outcome == "completed").count();
    println!(
        "{} jobs: {completed} completed, {} rejected, {} shed; cache hit rate {:.2}",
        rows.len(),
        s.rejected,
        s.shed,
        hit_rate
    );
    assert_eq!(rows.len(), 20, "every submission is accounted for");
    assert!(completed > 0, "some jobs completed");
    assert!(s.rejected > 0, "the over-budget product was rejected");
    assert_eq!(
        s.device_bytes_in_use, 0,
        "device tracker drained back to zero"
    );
    assert!(
        metrics.get(tsg_runtime::Counter::TilesVisited) > 0,
        "the burst visited tiles"
    );
    assert!(
        metrics.get(tsg_runtime::Counter::BytesAlloc)
            >= metrics.get(tsg_runtime::Counter::BytesFreed),
        "alloc bytes dominate freed bytes"
    );

    let report = obj([
        (
            "config",
            obj([
                ("device", engine.device().name.as_str().into()),
                ("budget_bytes", engine.device().mem_budget.into()),
                ("cache_bytes", (8usize << 20).into()),
                ("workers", 2u64.into()),
                ("queue_depth", 5u64.into()),
                ("jobs_submitted", 20u64.into()),
            ]),
        ),
        ("jobs", Value::Arr(rows.iter().map(row_to_json).collect())),
        (
            "stats",
            obj([
                ("submitted", s.submitted.into()),
                ("completed", s.completed.into()),
                ("failed", s.failed.into()),
                ("rejected", s.rejected.into()),
                ("shed", s.shed.into()),
                ("timed_out", s.timed_out.into()),
                (
                    "queue_wait_ms_total",
                    Value::Num(s.queue_wait_total.as_secs_f64() * 1e3),
                ),
                (
                    "exec_ms_total",
                    Value::Num(s.exec_total.as_secs_f64() * 1e3),
                ),
                ("conversions", s.registry.conversions.into()),
                ("cache_hits", s.registry.cache_hits.into()),
                ("cache_misses", s.registry.cache_misses.into()),
                ("cache_hit_rate", Value::Num(hit_rate)),
                ("evictions", s.registry.evictions.into()),
            ]),
        ),
        (
            "counters",
            Value::Obj(
                metrics
                    .iter()
                    .map(|(_, name, total)| (name.to_string(), total.into()))
                    .collect(),
            ),
        ),
        ("sample_spans", spans_to_json(&sample_spans)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, format!("{report}\n")).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
