//! Figure 12: CSR→tiled format conversion time vs the runtime of a single
//! TileSpGEMM, against the flop count. The paper's claim: conversion costs
//! no more than ~ten single SpGEMM runs, so pipelines that reuse the tiled
//! form (e.g. AMG) amortise it away.

use tilespgemm_core::{multiply, timed_csr_to_tile, Config};
use tsg_bench::{banner, ms, prepare, quick};
use tsg_gen::fig6_sweep;
use tsg_runtime::MemTracker;

fn main() {
    banner("Figure 12: conversion time vs single TileSpGEMM runtime");
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>8}",
        "matrix", "flops(A^2)", "convert (ms)", "spgemm (ms)", "ratio"
    );
    println!("csv,fig12,matrix,flops,convert_ms,spgemm_ms,ratio");
    let entries = fig6_sweep();
    let entries: Vec<_> = if quick() {
        entries.into_iter().step_by(6).collect()
    } else {
        entries
    };
    let mut ratios = Vec::new();
    for entry in entries {
        let (prep, stats) = prepare(&entry, false);
        let (_, timing) = timed_csr_to_tile(&prep.a);
        let start = std::time::Instant::now();
        let out = multiply(&prep.ta, &prep.tb, &Config::default(), &MemTracker::new());
        let spgemm = start.elapsed();
        if out.is_err() {
            continue;
        }
        let ratio = timing.conversion.as_secs_f64() / spgemm.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!(
            "{:<18} {:>14} {:>14.2} {:>14.2} {:>8.2}",
            entry.name,
            stats.flops,
            ms(timing.conversion),
            ms(spgemm),
            ratio
        );
        println!(
            "csv,fig12,{},{},{:.3},{:.3},{:.3}",
            entry.name,
            stats.flops,
            ms(timing.conversion),
            ms(spgemm),
            ratio
        );
    }
    ratios.sort_by(f64::total_cmp);
    if !ratios.is_empty() {
        println!();
        println!(
            "conversion/spgemm ratio: median {:.2}, max {:.2} (paper: conversion stays within ~10 single runs)",
            ratios[ratios.len() / 2],
            ratios.last().unwrap()
        );
    }
}
