//! Figure 9: runtime peak space cost of `C = A²` on the representative
//! matrices — completion time (ms) on the x-axis, peak memory (MB) on the
//! y-axis — for the three open baselines and TileSpGEMM (the paper excludes
//! closed-source cuSPARSE; we include our cuSPARSE-like model for reference
//! but mark it).

use tsg_baselines::MethodKind;
use tsg_bench::{banner, measure, ms, prepare, quick};
use tsg_gen::representative_18;
use tsg_runtime::Device;

fn main() {
    banner("Figure 9: peak memory vs completion time, A^2 (rtx3090-sim)");
    let device = Device::rtx3090_sim();
    println!("csv,fig9,matrix,method,time_ms,peak_mb");
    let entries = representative_18();
    let entries: Vec<_> = if quick() {
        entries.into_iter().take(4).collect()
    } else {
        entries
    };
    for entry in entries {
        let (prep, stats) = prepare(&entry, false);
        println!("\n{}", entry.name);
        println!("  {:<16} {:>12} {:>12}", "method", "time (ms)", "peak (MB)");
        for kind in [
            MethodKind::BhSparseLike,
            MethodKind::NSparseLike,
            MethodKind::SpeckLike,
            MethodKind::TileSpGemm,
        ] {
            let m = measure(&entry.name, &prep, kind, "A2", &device, &stats);
            match m.elapsed {
                Some(t) => {
                    let mb = m.peak_bytes as f64 / 1e6;
                    println!("  {:<16} {:>12.2} {:>12.2}", kind.name(), ms(t), mb);
                    println!(
                        "csv,fig9,{},{},{:.3},{:.3}",
                        entry.name,
                        kind.name(),
                        ms(t),
                        mb
                    );
                }
                None => {
                    println!("  {:<16} {:>12} {:>12}", kind.name(), "OOM", "-");
                    println!("csv,fig9,{},{},oom,oom", entry.name, kind.name());
                }
            }
        }
    }
}
