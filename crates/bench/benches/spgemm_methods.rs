//! Criterion counterpart of Figures 6/7/8: all five methods on one matrix
//! per structure class, `A²` in double precision.
//!
//! ```text
//! cargo bench -p tsg-bench --bench spgemm_methods
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsg_baselines::{MethodKind, PreparedOperands};
use tsg_gen::suite::GenSpec;
use tsg_runtime::MemTracker;

fn class_zoo() -> Vec<(&'static str, GenSpec)> {
    use GenSpec::*;
    vec![
        (
            "fem",
            Fem {
                nodes: 500,
                block: 6,
                couplings: 4,
                spread: 20,
                seed: 1,
            },
        ),
        ("stencil", Grid5 { nx: 80, ny: 80 }),
        (
            "powerlaw",
            Rmat {
                scale: 12,
                edges: 25_000,
                mild: false,
                seed: 2,
            },
        ),
        (
            "hypersparse",
            Scatter {
                n: 4_000,
                per_row: 4,
                seed: 3,
            },
        ),
        (
            "cluster",
            PowerFlow {
                clusters: 10,
                cluster_size: 50,
                links: 200,
                seed: 4,
            },
        ),
    ]
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_a2");
    group.sample_size(10);
    for (class, spec) in class_zoo() {
        let a = spec.build();
        let flops = a.spgemm_flops(&a);
        let prep = PreparedOperands::squared(a);
        group.throughput(criterion::Throughput::Elements(flops));
        for kind in MethodKind::all() {
            group.bench_with_input(BenchmarkId::new(kind.name(), class), &prep, |b, prep| {
                b.iter(|| prep.run(kind, &MemTracker::new()).expect("multiply"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
