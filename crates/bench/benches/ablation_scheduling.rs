//! Ablation of the task granularity: the paper's one-warp-per-tile mapping
//! (issue #1: bounded work per task, so no load imbalance) against a
//! coarser one-task-per-tile-row decomposition and the work-binned
//! heaviest-first dispatch, on a power-law matrix whose tile rows are wildly
//! uneven — each crossed with the pair-reuse knob (reuse vs the paper's
//! recompute-in-step-3 path).
//!
//! On a multi-core host the per-tile-row variant loses on skewed matrices
//! because the heavy tile rows straggle; on a single-core host both collapse
//! to serial execution and the bench documents that the *work* is identical.
//!
//! ```text
//! cargo bench -p tsg-bench --bench ablation_scheduling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tilespgemm_core::{Config, Scheduling};
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

fn bench_scheduling(c: &mut Criterion) {
    let cases = [
        (
            "skewed-powerlaw",
            GenSpec::Rmat {
                scale: 12,
                edges: 25_000,
                mild: false,
                seed: 1,
            },
        ),
        ("uniform-stencil", GenSpec::Grid5 { nx: 90, ny: 90 }),
    ];
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    for (regime, spec) in cases {
        let a = spec.build();
        let ta = TileMatrix::from_csr(&a);
        for (label, scheduling) in [
            ("per-tile", Scheduling::PerTile),
            ("per-tile-row", Scheduling::PerTileRow),
            ("binned", Scheduling::Binned),
        ] {
            for pair_reuse in [true, false] {
                let cfg = Config::builder()
                    .scheduling(scheduling)
                    .pair_reuse(pair_reuse)
                    .build();
                let variant = format!("{label}-{}", if pair_reuse { "reuse" } else { "recompute" });
                group.bench_with_input(BenchmarkId::new(variant, regime), &ta, |b, ta| {
                    b.iter(|| tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).unwrap());
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
