//! Criterion counterpart of Figure 10: the TileSpGEMM pipeline end to end
//! and its individual steps, on a FEM-class matrix.
//!
//! ```text
//! cargo bench -p tsg-bench --bench tile_pipeline
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use tilespgemm_core::step1::tile_structure_spgemm;
use tilespgemm_core::Config;
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

fn bench_pipeline(c: &mut Criterion) {
    let a = GenSpec::Fem {
        nodes: 500,
        block: 6,
        couplings: 4,
        spread: 20,
        seed: 1,
    }
    .build();
    let ta = TileMatrix::from_csr(&a);

    let mut group = c.benchmark_group("tile_pipeline");
    group.sample_size(10);

    group.bench_function("full_multiply", |b| {
        b.iter(|| {
            tilespgemm_core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
                .expect("multiply")
        });
    });

    group.bench_function("step1_tile_structure", |b| {
        b.iter(|| {
            tile_structure_spgemm(
                ta.tile_m,
                &ta.tile_ptr,
                &ta.tile_colidx,
                &ta.tile_ptr,
                &ta.tile_colidx,
                ta.tile_n,
            )
        });
    });

    group.bench_function("col_index_build", |b| {
        b.iter(|| ta.col_index());
    });

    group.bench_function("csr_to_tile", |b| {
        b.iter(|| TileMatrix::from_csr(&a));
    });

    group.bench_function("tile_to_csr", |b| {
        b.iter(|| ta.to_csr());
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
