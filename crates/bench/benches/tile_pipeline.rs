//! Criterion counterpart of Figure 10: the TileSpGEMM pipeline end to end
//! and its individual steps, on a FEM-class matrix — plus a machine-readable
//! `BENCH_pipeline.json` at the workspace root comparing the pair-reuse and
//! scheduling variants on an R-MAT/power-law suite, and measuring the
//! context-API (`SpGemm` + `NullRecorder`) overhead against the free
//! function on the same matrices (the `"method":"ctx_overhead"` records).
//!
//! ```text
//! cargo bench -p tsg-bench --bench tile_pipeline
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use tilespgemm_core::step1::tile_structure_spgemm;
use tilespgemm_core::{Config, Scheduling, SimdPolicy, SpGemm};
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::{Breakdown, MemTracker};

/// One measured pipeline configuration, serialized into BENCH_pipeline.json.
struct Record {
    matrix: &'static str,
    scheduling: &'static str,
    pair_reuse: bool,
    wall_ms: f64,
    peak_bytes: usize,
    breakdown: Breakdown,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"matrix\":\"{}\",\"method\":\"tilespgemm\",",
                "\"scheduling\":\"{}\",\"pair_reuse\":{},",
                "\"wall_ms\":{:.4},\"peak_bytes\":{},",
                "\"step1_ms\":{:.4},\"step2_ms\":{:.4},",
                "\"step3_ms\":{:.4},\"alloc_ms\":{:.4}}}"
            ),
            self.matrix,
            self.scheduling,
            self.pair_reuse,
            self.wall_ms,
            self.peak_bytes,
            ms(self.breakdown.step1),
            ms(self.breakdown.step2),
            ms(self.breakdown.step3),
            ms(self.breakdown.alloc),
        )
    }
}

/// Best-of-`reps` wall time (plus the matching breakdown and peak bytes)
/// for one configuration, after one warmup run.
fn measure(
    ta: &TileMatrix<f64>,
    matrix: &'static str,
    scheduling: (&'static str, Scheduling),
    pair_reuse: bool,
    reps: usize,
) -> Record {
    let cfg = Config::builder()
        .scheduling(scheduling.1)
        .pair_reuse(pair_reuse)
        .build();
    tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("warmup multiply");
    let mut best: Option<Record> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("multiply");
        let wall_ms = ms(t0.elapsed());
        if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
            best = Some(Record {
                matrix,
                scheduling: scheduling.0,
                pair_reuse,
                wall_ms,
                peak_bytes: out.peak_bytes,
                breakdown: out.breakdown,
            });
        }
    }
    best.expect("reps >= 1")
}

/// Measures the context API against the free function on one matrix:
/// best-of-`reps` wall time for each path, the relative overhead, and a
/// bitwise-identity check on the two products. The context runs the default
/// `NullRecorder`, so any gap is pure API plumbing (the virtual span calls);
/// the acceptance bar is ≤2%, enforced at >5% by the `overhead_check` bin
/// (best-of-N still jitters at the ±percent level on shared CI hardware).
fn overhead_record(ta: &TileMatrix<f64>, matrix: &'static str, reps: usize) -> String {
    let cfg = Config::default();
    let ctx = SpGemm::new();
    // Warm both paths, and pin down that the context changes nothing about
    // the result.
    let free = tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("warmup");
    let through_ctx = ctx.multiply(ta, ta).expect("warmup");
    assert_eq!(
        free.c, through_ctx.c,
        "context path must be bitwise-identical to the free function"
    );
    let mut best_free = f64::INFINITY;
    let mut best_ctx = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("multiply");
        best_free = best_free.min(ms(t0.elapsed()));
        let t1 = Instant::now();
        ctx.multiply(ta, ta).expect("multiply");
        best_ctx = best_ctx.min(ms(t1.elapsed()));
    }
    let overhead_pct = (best_ctx - best_free) / best_free * 100.0;
    println!(
        "  {matrix:<14} ctx {best_ctx:>9.3} ms vs free {best_free:>9.3} ms ({overhead_pct:+.2}%)"
    );
    format!(
        concat!(
            "{{\"matrix\":\"{}\",\"method\":\"ctx_overhead\",",
            "\"free_ms\":{:.4},\"ctx_null_ms\":{:.4},\"overhead_pct\":{:.3}}}"
        ),
        matrix, best_free, best_ctx, overhead_pct
    )
}

/// The step-3 kernel ablation ladder (DESIGN.md §15): forced-scalar, the
/// vector kernels without the dense-tile promotion, and the full `Auto`
/// dispatch with the fast path. One record per rung; best-of-`reps` after a
/// warmup, with a bitwise-identity check against the scalar rung (the
/// ladder's core contract). Deliberately carries no `scheduling` /
/// `pair_reuse` keys so `perf_smoke`'s line-based baseline lookup never
/// matches an ablation row.
fn simd_ablation_record(
    ta: &TileMatrix<f64>,
    matrix: &'static str,
    kernel: &'static str,
    policy: SimdPolicy,
    scalar_c: &TileMatrix<f64>,
    reps: usize,
) -> String {
    let cfg = Config::builder().simd(policy).build();
    let warm = tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("warmup");
    assert_eq!(
        warm.c, *scalar_c,
        "{matrix}/{kernel}: ablation rung must stay bitwise-identical to scalar"
    );
    let mut best_wall = f64::INFINITY;
    let mut best = warm.breakdown;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).expect("multiply");
        let wall = ms(t0.elapsed());
        if wall < best_wall {
            best_wall = wall;
            best = out.breakdown;
        }
    }
    println!(
        "  {matrix:<14} kernel={kernel:<11} {best_wall:>9.3} ms (step3 {:>8.3} ms)",
        ms(best.step3)
    );
    format!(
        concat!(
            "{{\"matrix\":\"{}\",\"method\":\"simd_ablation\",\"kernel\":\"{}\",",
            "\"wall_ms\":{:.4},\"step2_ms\":{:.4},\"step3_ms\":{:.4}}}"
        ),
        matrix,
        kernel,
        best_wall,
        ms(best.step2),
        ms(best.step3),
    )
}

/// Measures every (matrix, scheduling, pair_reuse) combination of the suite
/// and writes BENCH_pipeline.json at the workspace root.
fn emit_bench_json() {
    let suite: [(&'static str, GenSpec); 3] = [
        (
            "fem-500",
            GenSpec::Fem {
                nodes: 500,
                block: 6,
                couplings: 4,
                spread: 20,
                seed: 1,
            },
        ),
        (
            "rmat-skewed",
            GenSpec::Rmat {
                scale: 12,
                edges: 25_000,
                mild: false,
                seed: 1,
            },
        ),
        (
            "webbase-like",
            GenSpec::Rmat {
                scale: 14,
                edges: 80_000,
                mild: false,
                seed: 112,
            },
        ),
    ];
    let schedulings = [
        ("per-tile", Scheduling::PerTile),
        ("binned", Scheduling::Binned),
    ];
    let mats: Vec<(&'static str, TileMatrix<f64>)> = suite
        .into_iter()
        .map(|(name, spec)| (name, TileMatrix::from_csr(&spec.build())))
        .collect();
    let mut records = Vec::new();
    for &(name, ref ta) in &mats {
        for &scheduling in &schedulings {
            for pair_reuse in [true, false] {
                records.push(measure(ta, name, scheduling, pair_reuse, 5));
            }
        }
    }
    let mut body: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    for &(name, ref ta) in &mats {
        body.push(format!("  {}", overhead_record(ta, name, 7)));
    }
    // Kernel ablation on the two power-law matrices, where step 3 dominates.
    for &(name, ref ta) in &mats {
        if name == "fem-500" {
            continue;
        }
        let scalar_cfg = Config::builder().simd(SimdPolicy::ForceScalar).build();
        let scalar_c = tilespgemm_core::multiply(ta, ta, &scalar_cfg, &MemTracker::new())
            .expect("scalar reference")
            .c;
        for (kernel, policy) in [
            ("scalar", SimdPolicy::ForceScalar),
            ("simd", SimdPolicy::ForceSimd),
            ("simd+dense", SimdPolicy::Auto),
        ] {
            body.push(format!(
                "  {}",
                simd_ablation_record(ta, name, kernel, policy, &scalar_c, 7)
            ));
        }
    }
    let json = format!("[\n{}\n]\n", body.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path} ({} records)", records.len());
    for r in &records {
        println!(
            "  {:<14} {:<10} reuse={:<5} {:>9.3} ms (peak {} B)",
            r.matrix, r.scheduling, r.pair_reuse, r.wall_ms, r.peak_bytes
        );
    }
}

fn bench_pipeline(c: &mut Criterion) {
    emit_bench_json();

    let a = GenSpec::Fem {
        nodes: 500,
        block: 6,
        couplings: 4,
        spread: 20,
        seed: 1,
    }
    .build();
    let ta = TileMatrix::from_csr(&a);

    let mut group = c.benchmark_group("tile_pipeline");
    group.sample_size(10);

    group.bench_function("full_multiply", |b| {
        b.iter(|| {
            tilespgemm_core::multiply(&ta, &ta, &Config::default(), &MemTracker::new())
                .expect("multiply")
        });
    });

    group.bench_function("full_multiply_recompute_pairs", |b| {
        let cfg = Config::builder().pair_reuse(false).build();
        b.iter(|| tilespgemm_core::multiply(&ta, &ta, &cfg, &MemTracker::new()).expect("multiply"));
    });

    group.bench_function("step1_tile_structure", |b| {
        b.iter(|| {
            tile_structure_spgemm(
                ta.tile_m,
                &ta.tile_ptr,
                &ta.tile_colidx,
                &ta.tile_ptr,
                &ta.tile_colidx,
                ta.tile_n,
            )
        });
    });

    group.bench_function("col_index_build", |b| {
        b.iter(|| ta.col_index());
    });

    group.bench_function("csr_to_tile", |b| {
        b.iter(|| TileMatrix::from_csr(&a));
    });

    group.bench_function("tile_to_csr", |b| {
        b.iter(|| ta.to_csr());
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
