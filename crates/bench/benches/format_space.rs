//! Structure-operation microbenchmarks behind Figure 11's space study:
//! footprint accounting, validation, and the tiled structural accessors the
//! SpGEMM kernels lean on (column index build, per-tile views, mask rank
//! queries).
//!
//! ```text
//! cargo bench -p tsg-bench --bench format_space
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use tsg_gen::suite::GenSpec;
use tsg_matrix::{Footprint, TileMatrix};

fn bench_structure_ops(c: &mut Criterion) {
    let a = GenSpec::Fem {
        nodes: 800,
        block: 6,
        couplings: 4,
        spread: 25,
        seed: 1,
    }
    .build();
    let ta = TileMatrix::from_csr(&a);

    let mut group = c.benchmark_group("structure_ops");

    group.bench_function("footprint_components", |b| {
        b.iter(|| ta.components().iter().map(|c| c.bytes).sum::<usize>());
    });

    group.bench_function("validate", |b| {
        b.iter(|| ta.validate().unwrap());
    });

    group.bench_function("col_index", |b| {
        b.iter(|| ta.col_index());
    });

    group.bench_function("expand_tile_rowidx", |b| {
        b.iter(|| ta.expand_tile_rowidx());
    });

    group.bench_function("iterate_all_tiles", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for t in 0..ta.tile_count() {
                for (_, _, v) in ta.tile(t).iter() {
                    acc += v;
                }
            }
            acc
        });
    });

    group.bench_function("mask_rank_queries", |b| {
        // The sparse accumulator's inner operation: rank of a column within
        // a row mask.
        let masks: Vec<u16> = ta.masks.clone();
        b.iter(|| {
            let mut acc = 0usize;
            for (i, &m) in masks.iter().enumerate() {
                let k = (i % 16) as u16;
                acc += (m & ((1u16 << k).wrapping_sub(1))).count_ones() as usize;
            }
            acc
        });
    });

    group.finish();
}

criterion_group!(benches, bench_structure_ops);
criterion_main!(benches);
