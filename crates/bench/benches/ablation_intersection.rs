//! Ablation of §3.3's set-intersection choice: the paper reports that
//! binary search (with left-bound narrowing) beats the merge primitive for
//! matching tile pairs; this bench reproduces the comparison — extended
//! with the bitmap kernel and the adaptive per-tile selector — both on raw
//! index lists and end-to-end.
//!
//! ```text
//! cargo bench -p tsg-bench --bench ablation_intersection
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tilespgemm_core::intersect::{intersect_bitmap, intersect_into, IntersectionKind};
use tilespgemm_core::{AccumulatorKind, Config};
use tsg_gen::suite::GenSpec;
use tsg_matrix::{ListBitmaps, TileMatrix};
use tsg_runtime::MemTracker;

/// Sorted random list of `len` values below `universe`.
fn sorted_list(len: usize, universe: u32, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut v: Vec<u32> = (0..len * 2)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % universe as u64) as u32
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn bench_raw_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_raw");
    // Asymmetric lists (the common tile-row vs tile-column case) and
    // symmetric ones.
    for (short, long) in [(8usize, 512usize), (64, 512), (256, 256)] {
        let a = sorted_list(short, 4096, 1);
        let b = sorted_list(long, 4096, 2);
        for kind in [IntersectionKind::BinarySearch, IntersectionKind::Merge] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), format!("{short}x{long}")),
                &(a.clone(), b.clone()),
                |bench, (a, b)| {
                    let mut out = Vec::new();
                    bench.iter(|| {
                        intersect_into(kind, a, b, &mut out);
                        out.len()
                    });
                },
            );
        }
        // The bitmap kernel consumes pre-built sidecars (amortized over a
        // whole pipeline run), so only the AND+rank walk is on the clock.
        let a_map = ListBitmaps::from_csr(&[0, a.len()], &a, 4096);
        let b_map = ListBitmaps::from_csr(&[0, b.len()], &b, 4096);
        group.bench_with_input(
            BenchmarkId::new("Bitmap", format!("{short}x{long}")),
            &(a_map, b_map),
            |bench, (a_map, b_map)| {
                let (aw, ar) = a_map.list(0);
                let (bw, br) = b_map.list(0);
                let mut out = Vec::new();
                bench.iter(|| {
                    intersect_bitmap(aw, ar, bw, br, &mut out);
                    out.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let a = GenSpec::Rmat {
        scale: 12,
        edges: 25_000,
        mild: false,
        seed: 3,
    }
    .build();
    let ta = TileMatrix::from_csr(&a);
    let mut group = c.benchmark_group("intersect_end_to_end");
    group.sample_size(10);
    for kind in [
        IntersectionKind::BinarySearch,
        IntersectionKind::Merge,
        IntersectionKind::Bitmap,
        IntersectionKind::Adaptive,
    ] {
        let cfg = Config::builder()
            .tnnz_threshold(192)
            .intersection(kind)
            .accumulator(AccumulatorKind::Adaptive)
            .build();
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| tilespgemm_core::multiply(&ta, &ta, &cfg, &MemTracker::new()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_intersection, bench_end_to_end);
criterion_main!(benches);
