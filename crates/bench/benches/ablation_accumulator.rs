//! Ablation of §3.3's adaptive accumulator: sparse-only vs dense-only vs
//! adaptive, and a sweep of the `tnnz` threshold around the paper's 192.
//! The paper's rationale: dense accumulation wins above ~75% tile
//! occupancy, sparse below.
//!
//! ```text
//! cargo bench -p tsg-bench --bench ablation_accumulator
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tilespgemm_core::{AccumulatorKind, Config, IntersectionKind};
use tsg_gen::suite::GenSpec;
use tsg_matrix::TileMatrix;
use tsg_runtime::MemTracker;

fn bench_accumulators(c: &mut Criterion) {
    // Two regimes: dense tiles (cluster matrix -> full output tiles) and
    // sparse tiles (stencil -> few nonzeros per tile).
    let cases = [
        (
            "dense-tiles",
            GenSpec::PowerFlow {
                clusters: 10,
                cluster_size: 60,
                links: 100,
                seed: 1,
            },
        ),
        ("sparse-tiles", GenSpec::Grid5 { nx: 90, ny: 90 }),
    ];
    let mut group = c.benchmark_group("accumulator");
    group.sample_size(10);
    for (regime, spec) in cases {
        let a = spec.build();
        let ta = TileMatrix::from_csr(&a);
        for (label, accumulator) in [
            ("adaptive", AccumulatorKind::Adaptive),
            ("always-sparse", AccumulatorKind::AlwaysSparse),
            ("always-dense", AccumulatorKind::AlwaysDense),
        ] {
            let cfg = Config::builder()
                .tnnz_threshold(192)
                .intersection(IntersectionKind::BinarySearch)
                .accumulator(accumulator)
                .build();
            group.bench_with_input(BenchmarkId::new(label, regime), &ta, |b, ta| {
                b.iter(|| tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).unwrap());
            });
        }
        // Threshold sweep (adaptive only).
        for tnnz in [64usize, 128, 192, 240] {
            let cfg = Config::builder()
                .tnnz_threshold(tnnz)
                .intersection(IntersectionKind::BinarySearch)
                .accumulator(AccumulatorKind::Adaptive)
                .build();
            group.bench_with_input(
                BenchmarkId::new(format!("tnnz-{tnnz}"), regime),
                &ta,
                |b, ta| {
                    b.iter(|| tilespgemm_core::multiply(ta, ta, &cfg, &MemTracker::new()).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
