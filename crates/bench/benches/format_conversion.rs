//! Criterion counterpart of Figure 12: CSR → tiled conversion cost across
//! structure classes, against one TileSpGEMM run on the same matrix.
//!
//! ```text
//! cargo bench -p tsg-bench --bench format_conversion
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tilespgemm_core::Config;
use tsg_gen::suite::GenSpec;
use tsg_matrix::{CsbI, CsbM, TileMatrix};
use tsg_runtime::MemTracker;

fn bench_conversion(c: &mut Criterion) {
    use GenSpec::*;
    let cases = [
        (
            "fem",
            Fem {
                nodes: 500,
                block: 6,
                couplings: 4,
                spread: 20,
                seed: 1,
            },
        ),
        ("stencil", Grid5 { nx: 80, ny: 80 }),
        (
            "powerlaw",
            Rmat {
                scale: 12,
                edges: 25_000,
                mild: false,
                seed: 2,
            },
        ),
    ];
    let mut group = c.benchmark_group("conversion");
    group.sample_size(10);
    for (class, spec) in cases {
        let a = spec.build();
        group.bench_with_input(BenchmarkId::new("csr_to_tile", class), &a, |b, a| {
            b.iter(|| TileMatrix::from_csr(a));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_csb_i", class), &a, |b, a| {
            b.iter(|| CsbI::from_csr(a));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_csb_m", class), &a, |b, a| {
            b.iter(|| CsbM::from_csr(a));
        });
        let ta = TileMatrix::from_csr(&a);
        group.bench_with_input(BenchmarkId::new("one_spgemm", class), &ta, |b, ta| {
            b.iter(|| {
                tilespgemm_core::multiply(ta, ta, &Config::default(), &MemTracker::new()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
