//! Offline stand-in for the `rayon` crate.
//!
//! This workspace vendors the subset of rayon's data-parallel iterator API it
//! actually uses, because the build environment has no network access to
//! crates.io. Unlike a serial mock, the executor here is genuinely parallel:
//! every terminal operation splits its indexed producer into small chunks and
//! drains them from a shared queue on `std::thread::scope` workers, so chunks
//! self-schedule dynamically — heavy chunks keep one worker busy while the
//! rest of the queue drains elsewhere. That property is what makes the
//! heaviest-first binned dispatch in `tilespgemm-core` meaningful.
//!
//! Supported surface (all of it exercised by this workspace):
//! * `par_iter` / `par_iter_mut` / `into_par_iter` (slices, `Vec`, ranges)
//! * `par_chunks` / `par_chunks_mut`
//! * `map`, `map_init`, `zip`, `enumerate`
//! * `for_each`, `for_each_init`, `sum`, `min`, `collect::<Vec<_>>`
//! * `current_num_threads`, `ThreadPoolBuilder` / `ThreadPool::install`

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count plumbing.
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(default_threads)
}

/// Error from [`ThreadPoolBuilder::build`]. The shim never fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the options used here.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count (0 means the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Accepted for API compatibility; worker threads are unnamed.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// A logical pool: parallel operations inside [`ThreadPool::install`] use the
/// pool's thread count. Workers are spawned per operation (scoped), not kept
/// resident, which keeps the shim dependency-free.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(self.threads)));
        let out = f();
        THREAD_OVERRIDE.with(|o| o.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator trait.
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized source of items — the shim's fusion of rayon's
/// `ParallelIterator` + `IndexedParallelIterator` + `Producer` layers.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced.
    type Item: Send;
    /// Sequential iterator a chunk decays to.
    type Seq: Iterator<Item = Self::Item>;

    /// Remaining items.
    fn pi_len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);
    /// Decays into a sequential iterator.
    fn pi_into_seq(self) -> Self::Seq;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Maps with per-chunk state created by `init`.
    fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        R: Send,
        INIT: Fn() -> T + Sync + Send + Clone,
        F: Fn(&mut T, Self::Item) -> R + Sync + Send + Clone,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Pairs items positionally with another parallel iterator.
    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Attaches the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_chunked(self, &|_, chunk: Self| chunk.pi_into_seq().for_each(&f));
    }

    /// Runs `f` on every item with per-chunk state from `init`.
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) + Sync + Send,
    {
        run_chunked(self, &|_, chunk: Self| {
            let mut state = init();
            for item in chunk.pi_into_seq() {
                f(&mut state, item);
            }
        });
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials: Mutex<Vec<S>> = Mutex::new(Vec::new());
        run_chunked(self, &|_, chunk: Self| {
            let part: S = chunk.pi_into_seq().sum();
            partials.lock().unwrap().push(part);
        });
        partials.into_inner().unwrap().into_iter().sum()
    }

    /// Minimum item, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials: Mutex<Vec<Self::Item>> = Mutex::new(Vec::new());
        run_chunked(self, &|_, chunk: Self| {
            if let Some(m) = chunk.pi_into_seq().min() {
                partials.lock().unwrap().push(m);
            }
        });
        partials.into_inner().unwrap().into_iter().min()
    }

    /// Collects into a container (only `Vec<T>` is supported).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection from a parallel iterator (shim: `Vec` only).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving item order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let total = p.pi_len();
        let slots: Vec<Mutex<Vec<T>>> = (0..chunk_count(total))
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        run_chunked(p, &|idx, chunk: P| {
            let mut out = Vec::with_capacity(chunk.pi_len());
            out.extend(chunk.pi_into_seq());
            *slots[idx].lock().unwrap() = out;
        });
        let mut result = Vec::with_capacity(total);
        for slot in slots {
            result.append(&mut slot.into_inner().unwrap());
        }
        result
    }
}

// ---------------------------------------------------------------------------
// The executor: chunk queue + scoped workers.
// ---------------------------------------------------------------------------

/// Number of chunks a `len`-item workload splits into (same formula the
/// executor uses, exposed so `collect` can pre-size its slot table).
fn chunk_count(len: usize) -> usize {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return 1;
    }
    let target = threads * 4;
    let chunk = len.div_ceil(target).max(1);
    len.div_ceil(chunk)
}

fn run_chunked<P: ParallelIterator>(p: P, per_chunk: &(impl Fn(usize, P) + Sync)) {
    let len = p.pi_len();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        per_chunk(0, p);
        return;
    }
    let target = threads * 4;
    let chunk = len.div_ceil(target).max(1);
    let mut chunks = Vec::with_capacity(len.div_ceil(chunk));
    let mut rest = p;
    while rest.pi_len() > chunk {
        let (head, tail) = rest.pi_split_at(chunk);
        chunks.push(head);
        rest = tail;
    }
    chunks.push(rest);
    debug_assert_eq!(chunks.len(), chunk_count(len));

    let queue: Vec<Mutex<Option<P>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(queue.len());
    let work = |with_override: bool| {
        // Leaf code running on a worker must not fan out again: nested
        // parallel calls inside a chunk would oversubscribe the machine.
        let prev = if with_override {
            THREAD_OVERRIDE.with(|o| o.replace(Some(1)))
        } else {
            None
        };
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= queue.len() {
                break;
            }
            let chunk = queue[i].lock().unwrap().take().expect("chunk taken twice");
            per_chunk(i, chunk);
        }
        if with_override {
            THREAD_OVERRIDE.with(|o| o.set(prev));
        }
    };
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(|| work(true));
        }
        work(false);
    });
}

// ---------------------------------------------------------------------------
// Concrete producers.
// ---------------------------------------------------------------------------

/// Parallel iterator over a range of integers.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

/// Integer types usable as parallel range endpoints. A single generic
/// `IntoParallelIterator` impl over this trait (rather than one impl per
/// integer type) lets `(0..n).into_par_iter()` with an untyped literal resolve
/// through the i32 fallback, matching rayon.
pub trait RangeInteger: Sized + Send + Copy {
    /// Length of `range` as a usize (0 when inverted).
    fn ri_len(range: &std::ops::Range<Self>) -> usize;
    /// `start` advanced by `by` positions.
    fn ri_advance(start: Self, by: usize) -> Self;
}

macro_rules! impl_range_integer {
    ($($t:ty),*) => {$(
        impl RangeInteger for $t {
            fn ri_len(range: &std::ops::Range<$t>) -> usize {
                (range.end.max(range.start) - range.start) as usize
            }
            fn ri_advance(start: $t, by: usize) -> $t {
                start + by as $t
            }
        }
    )*};
}

impl_range_integer!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl<T: RangeInteger> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = RangeIter<T>;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter { range: self }
    }
}

impl<T: RangeInteger> ParallelIterator for RangeIter<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Seq = std::ops::Range<T>;
    fn pi_len(&self) -> usize {
        T::ri_len(&self.range)
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = T::ri_advance(self.range.start, index);
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.range
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over fixed-size chunks of `&[T]`.
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(at);
        (
            ChunksIter {
                slice: a,
                size: self.size,
            },
            ChunksIter {
                slice: b,
                size: self.size,
            },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over fixed-size chunks of `&mut [T]`.
pub struct ChunksIterMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksIterMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;
    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (
            ChunksIterMut {
                slice: a,
                size: self.size,
            },
            ChunksIterMut {
                slice: b,
                size: self.size,
            },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel iterator taking ownership of a `Vec`'s items.
pub struct VecIntoIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;
    fn pi_len(&self) -> usize {
        self.vec.len()
    }
    fn pi_split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecIntoIter { vec: tail })
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Combinator producers.
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.base.pi_into_seq().map(self.f)
    }
}

/// Sequential side of [`MapInit`]: state is created lazily per chunk.
pub struct MapInitSeq<I, T, F> {
    inner: I,
    state: T,
    f: F,
}

impl<I, T, R, F> Iterator for MapInitSeq<I, T, F>
where
    I: Iterator,
    F: Fn(&mut T, I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        let item = self.inner.next()?;
        Some((self.f)(&mut self.state, item))
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

impl<P, T, R, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    R: Send,
    INIT: Fn() -> T + Sync + Send + Clone,
    F: Fn(&mut T, P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Seq = MapInitSeq<P::Seq, T, F>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            MapInit {
                base: a,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInit {
                base: b,
                init: self.init,
                f: self.f,
            },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        MapInitSeq {
            inner: self.base.pi_into_seq(),
            state: (self.init)(),
            f: self.f,
        }
    }
}

/// See [`ParallelIterator::zip`]. Truncates to the shorter side, like rayon.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.pi_split_at(index);
        let (b1, b2) = self.b.pi_split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn pi_into_seq(self) -> Self::Seq {
        self.a.pi_into_seq().zip(self.b.pi_into_seq())
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<std::ops::RangeFrom<usize>, P::Seq>;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn pi_into_seq(self) -> Self::Seq {
        (self.offset..).zip(self.base.pi_into_seq())
    }
}

// ---------------------------------------------------------------------------
// Conversion traits.
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Performs the conversion.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIntoIter<T>;
    fn into_par_iter(self) -> VecIntoIter<T> {
        VecIntoIter { vec: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn into_par_iter(self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

macro_rules! impl_into_par_identity {
    ($name:ty, [$($g:tt)*]) => {
        impl<$($g)*> IntoParallelIterator for $name
        where
            Self: ParallelIterator,
        {
            type Item = <Self as ParallelIterator>::Item;
            type Iter = Self;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    };
}

impl_into_par_identity!(RangeIter<T>, [T]);
impl_into_par_identity!(SliceIter<'a, T>, ['a, T]);
impl_into_par_identity!(SliceIterMut<'a, T>, ['a, T]);
impl_into_par_identity!(ChunksIter<'a, T>, ['a, T]);
impl_into_par_identity!(ChunksIterMut<'a, T>, ['a, T]);
impl_into_par_identity!(VecIntoIter<T>, [T]);
impl_into_par_identity!(Map<P, F>, [P, F]);
impl_into_par_identity!(MapInit<P, I, F>, [P, I, F]);
impl_into_par_identity!(Zip<A, B>, [A, B]);
impl_into_par_identity!(Enumerate<P>, [P]);

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over the elements.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIter { slice: self, size }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ChunksIterMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksIterMut { slice: self, size }
    }
}

/// The traits parallel-iterator call sites need in scope.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_sum_matches_serial() {
        let par: u64 = (0u64..10_000).into_par_iter().sum();
        assert_eq!(par, (0u64..10_000).sum::<u64>());
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0usize..5_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v, (0..5_000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_for_each_writes_disjointly() {
        let mut a = vec![0usize; 1000];
        let mut b = vec![0usize; 1000];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn chunks_mut_fills_every_chunk() {
        let mut data = vec![0u8; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 9);
        assert_eq!(data[102], 10);
    }

    #[test]
    fn map_init_reuses_state_within_chunk() {
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (0usize..10_000)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    scratch.len()
                },
            )
            .collect();
        assert_eq!(out.len(), 10_000);
        // Far fewer inits than items proves per-chunk state reuse.
        assert!(inits.load(Ordering::Relaxed) <= 10_000 / 64);
    }

    #[test]
    fn min_on_vec_into_iter() {
        let v: Vec<i32> = (0..1000).rev().collect();
        assert_eq!(v.into_par_iter().min(), Some(0));
    }

    #[test]
    fn pool_install_controls_current_num_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn serial_pool_still_runs_everything() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let total: usize = pool.install(|| (0usize..100).into_par_iter().map(|i| i + 1).sum());
        assert_eq!(total, 5050);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if crate::current_num_threads() < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        (0usize..256).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(ids.lock().unwrap().len() > 1);
    }
}
