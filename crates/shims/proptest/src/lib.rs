//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, and [`collection::vec`] — driven by a deterministic per-test
//! seeded generator. No shrinking: a failing case reports its inputs via the
//! assertion message and its case number, which together with determinism is
//! enough to reproduce.

/// Deterministic generation driver and error types.
pub mod test_runner {
    /// Per-test configuration (the subset of `ProptestConfig` used here).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    /// The generator handed to strategies: splitmix64, seeded from the test
    /// name hash and the case number.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic generator for `(test, case)`.
        pub fn for_case(test_hash: u64, case: u32) -> Self {
            TestRng {
                state: test_hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// FNV-1a hash of a test path, used to decorrelate per-test streams.
pub fn hash_of(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.base.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and length drawn from a
    /// range. See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element` values with a length in `lengths`.
    pub fn vec<S: Strategy>(element: S, lengths: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(lengths.start < lengths.end, "empty length range");
        VecStrategy {
            element,
            min: lengths.start,
            max: lengths.end - 1,
        }
    }
}

/// Everything property tests conventionally import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs each property over `cases` deterministic generated inputs.
///
/// Mirrors proptest's macro shape:
/// `proptest! { #![proptest_config(cfg)] #[test] fn name(x in strat) { .. } }`
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@with $cfg; $($rest)*}
    };
    (@with $cfg:expr;
     $($(#[$meta:meta])+
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let test_hash =
                    $crate::hash_of(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(test_hash, case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@with $crate::test_runner::Config::default(); $($rest)*}
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -4i32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_threads_the_intermediate(
            pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0u64..1000);
        let mut r1 = crate::test_runner::TestRng::for_case(7, 3);
        let mut r2 = crate::test_runner::TestRng::for_case(7, 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
