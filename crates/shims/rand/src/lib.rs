//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256** seeded through splitmix64), the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`, and the [`SeedableRng`]
//! constructor `seed_from_u64`. The generated *streams* differ from upstream
//! rand, but every generator in this workspace is seeded and self-contained,
//! so determinism — the property the tests rely on — is preserved.

/// The raw generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from an [`RngCore`] — the shim's stand-in for
/// `Standard: Distribution<T>`.
pub trait UniformRand {
    /// Draws a value.
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformRand for u64 {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformRand for u32 {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformRand for usize {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformRand for bool {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformRand for f64 {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRand for f32 {
    fn uniform_rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled, mirroring `rand::distributions::uniform`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as UniformRand>::uniform_rand(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as UniformRand>::uniform_rand(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: UniformRand>(&mut self) -> T {
        T::uniform_rand(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as UniformRand>::uniform_rand(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seeding (Blackman & Vigna). Not the upstream `StdRng` algorithm, but
    /// a high-quality, fully deterministic substitute.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(0.1f64..=1.0);
            assert!((0.1..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
