//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface this workspace's `harness = false` benches
//! use — `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs one warm-up iteration and `sample_size` timed iterations,
//! then prints min/mean/max wall time in a single line per benchmark.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier, matching
/// `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an optional
/// input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Work-per-iteration declaration; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure and accumulates per-iteration timings.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample after a warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.times.clear();
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, times: &[Duration]) {
    if times.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let min = times.iter().min().unwrap();
    let max = times.iter().max().unwrap();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.3} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "{group}/{id}: [{:.4} ms {:.4} ms {:.4} ms] ({} samples){rate}",
        min.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        times.len(),
    );
}

/// A named set of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work done per iteration (shown as a rate in the report).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &id.render(), self.throughput, &bencher.times);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u64, |b, &n| {
            b.iter(|| (0u64..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
