//! Offline stand-in for the `parking_lot` crate: the poison-free [`Mutex`]
//! API this workspace uses, implemented over `std::sync::Mutex` (a poisoned
//! lock is recovered transparently, matching parking_lot's no-poisoning
//! semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
