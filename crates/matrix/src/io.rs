//! Matrix Market I/O.
//!
//! The paper's artifact only accepts `.mtx` files (appendix A.5); this module
//! implements the same entry point so real SuiteSparse downloads can be
//! dropped into the harness alongside the synthetic dataset. Supports the
//! `coordinate` container with `real`, `integer`, and `pattern` fields and
//! `general`, `symmetric`, and `skew-symmetric` symmetry.

use crate::{Coo, Csr, FormatError, Scalar};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), FormatError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let bad = |msg: &str| FormatError::Parse(format!("{msg}: {line:?}"));
    if tokens.len() != 5 || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(bad("malformed MatrixMarket header"));
    }
    if !tokens[1].eq_ignore_ascii_case("matrix") || !tokens[2].eq_ignore_ascii_case("coordinate") {
        return Err(bad("only `matrix coordinate` files are supported"));
    }
    let field = match tokens[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(bad(&format!("unsupported field type {other:?}"))),
    };
    let symmetry = match tokens[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(bad(&format!("unsupported symmetry {other:?}"))),
    };
    Ok((field, symmetry))
}

/// Reads a Matrix Market stream into triplet form.
pub fn read_matrix_market<T: Scalar, R: BufRead>(reader: R) -> Result<Coo<T>, FormatError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| FormatError::Parse("empty file".into()))?
        .map_err(|e| FormatError::Parse(e.to_string()))?;
    let (field, symmetry) = parse_header(&header)?;

    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| FormatError::Parse(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| FormatError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| FormatError::Parse(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(FormatError::Parse(format!(
            "size line must have 3 fields, got {size_line:?}"
        )));
    }
    let (nrows, ncols, declared_nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(nrows, ncols);
    coo.entries.reserve(match symmetry {
        Symmetry::General => declared_nnz,
        _ => declared_nnz * 2,
    });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| FormatError::Parse(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| FormatError::Parse("missing row".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| FormatError::Parse(e.to_string()))?;
        let c: usize = it
            .next()
            .ok_or_else(|| FormatError::Parse("missing col".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| FormatError::Parse(e.to_string()))?;
        let v = match field {
            Field::Pattern => T::ONE,
            Field::Real | Field::Integer => {
                let raw = it
                    .next()
                    .ok_or_else(|| FormatError::Parse("missing value".into()))?;
                T::from_f64(
                    raw.parse::<f64>()
                        .map_err(|e| FormatError::Parse(e.to_string()))?,
                )
            }
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(FormatError::Parse(format!(
                "coordinate ({r}, {c}) out of declared bounds {nrows}x{ncols} (1-based)"
            )));
        }
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        coo.push(r0, c0, v);
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r0 != c0 => coo.push(c0, r0, v),
            Symmetry::SkewSymmetric if r0 != c0 => coo.push(c0, r0, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(FormatError::Parse(format!(
            "declared {declared_nnz} entries but found {seen}"
        )));
    }
    Ok(coo)
}

/// Reads a `.mtx` file into triplet form.
pub fn read_matrix_market_file<T: Scalar>(path: impl AsRef<Path>) -> Result<Coo<T>, FormatError> {
    let file = std::fs::File::open(path).map_err(|e| FormatError::Parse(e.to_string()))?;
    read_matrix_market(BufReader::new(file))
}

/// Writes a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<T: Scalar, W: Write>(
    csr: &Csr<T>,
    mut writer: W,
) -> Result<(), FormatError> {
    let io_err = |e: std::io::Error| FormatError::Parse(e.to_string());
    writeln!(writer, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(writer, "{} {} {}", csr.nrows, csr.ncols, csr.nnz()).map_err(io_err)?;
    for row in 0..csr.nrows {
        let (cols, vals) = csr.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(writer, "{} {} {:e}", row + 1, c + 1, v.to_f64()).map_err(io_err)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Coo<f64>, FormatError> {
        read_matrix_market(text.as_bytes())
    }

    #[test]
    fn parses_general_real() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 2\n\
             1 1 2.5\n\
             3 2 -1.0\n",
        )
        .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), Some(2.5));
        assert_eq!(csr.get(2, 1), Some(-1.0));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn symmetric_mirrors_off_diagonals() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 2\n\
             2 1 4.0\n\
             3 3 1.0\n",
        )
        .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 1), Some(4.0));
        assert_eq!(csr.get(1, 0), Some(4.0));
    }

    #[test]
    fn skew_symmetric_negates_mirror() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 1 3.0\n",
        )
        .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 0), Some(3.0));
        assert_eq!(csr.get(0, 1), Some(-3.0));
    }

    #[test]
    fn pattern_entries_become_ones() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 2\n\
             1 2\n\
             2 1\n",
        )
        .unwrap();
        assert!(coo.entries.iter().all(|&(_, _, v)| v == 1.0));
    }

    #[test]
    fn rejects_wrong_counts_and_bounds() {
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n2 2 1\n").is_err());
        assert!(parse("not a header\n1 1 0\n").is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let csr =
            Csr::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.5, -2.0, 0.25]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&csr, &mut buf).unwrap();
        let back = read_matrix_market::<f64, _>(buf.as_slice())
            .unwrap()
            .to_csr();
        assert_eq!(back, csr);
    }
}
