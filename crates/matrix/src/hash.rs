//! Content hashing for matrices.
//!
//! The engine layer keys its matrix registry by *content*, so that loading
//! the same matrix twice (from a file, a generator, or a wire payload)
//! resolves to one registry entry and one cached tiled conversion. The hash
//! is a 64-bit FNV-1a over the matrix's logical content — dimensions, row
//! pointers, column indices, and the IEEE bit patterns of the values — so it
//! is stable across processes and independent of allocation capacities.
//!
//! FNV-1a is not collision-resistant against adversarial inputs; the
//! registry treats the hash as an identifier chosen by the client, exactly
//! as a content-addressed store does, and the failure mode of a collision is
//! serving the colliding matrix, not memory unsafety.

use crate::{Csr, Scalar, TileMatrix};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl<T: Scalar> Csr<T> {
    /// A 64-bit content hash of this matrix: dimensions, structure, and the
    /// IEEE bit patterns of the values (via the `f64` widening, so `f32` and
    /// `f64` matrices with identical widened values collide deliberately —
    /// they represent the same logical operand).
    ///
    /// `-0.0` and `+0.0` hash differently (different bit patterns); `NaN`
    /// payloads are hashed as stored.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.nrows as u64);
        h.write_u64(self.ncols as u64);
        for &p in &self.rowptr {
            h.write_u64(p as u64);
        }
        for &c in &self.colidx {
            h.write_u64(u64::from(c));
        }
        for &v in &self.vals {
            h.write_u64(v.to_f64().to_bits());
        }
        h.finish()
    }
}

impl<T: Scalar> TileMatrix<T> {
    /// A 64-bit content hash of this tiled matrix: dimensions, tile
    /// structure, intra-tile structure, and the IEEE bit patterns of the
    /// values (widened to `f64`, like [`Csr::content_hash`]).
    ///
    /// The hash is domain-separated from the CSR hash (a tag byte is
    /// absorbed first), so a tiled matrix and its CSR form never collide by
    /// construction — a product registered from its tiled form gets a
    /// different registry id than the same matrix registered from CSR.
    /// Within the tiled domain the hash is canonical: two structurally
    /// identical tiled matrices (same tiles, same intra-tile layout, same
    /// value bits) hash equal, which is what the registry's deduplication
    /// of repeated chain intermediates relies on.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"tiled");
        h.write_u64(self.nrows as u64);
        h.write_u64(self.ncols as u64);
        for &p in &self.tile_ptr {
            h.write_u64(p as u64);
        }
        for &c in &self.tile_colidx {
            h.write_u64(u64::from(c));
        }
        // `tile_nnz` is derivable from the per-tile row pointers, but it is
        // part of the format's invariants, so absorb it too.
        for &n in &self.tile_nnz {
            h.write_u64(n as u64);
        }
        h.write(&self.row_ptr);
        h.write(&self.row_idx);
        h.write(&self.col_idx);
        for &m in &self.masks {
            h.write(&m.to_le_bytes());
        }
        for &v in &self.vals {
            h.write_u64(v.to_f64().to_bits());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample(seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(40, 40);
        let mut state = seed | 1;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            coo.push(
                (state % 40) as u32,
                (state / 64 % 40) as u32,
                (state % 17) as f64 - 8.0,
            );
        }
        coo.to_csr()
    }

    #[test]
    fn equal_content_hashes_equal() {
        let a = sample(3);
        let b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn different_values_or_structure_change_the_hash() {
        let a = sample(3);
        let mut b = a.clone();
        b.vals[0] += 1.0;
        assert_ne!(a.content_hash(), b.content_hash());
        let c = sample(4);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn dimensions_are_part_of_the_content() {
        // Same (empty) structure, different shapes.
        let a = Csr::<f64>::zero(8, 8);
        let b = Csr::<f64>::zero(8, 9);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn hash_ignores_allocation_capacity() {
        let a = sample(9);
        let mut b = a.clone();
        b.vals.reserve(1024);
        b.colidx.reserve(1024);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn tiled_hash_is_canonical_and_domain_separated() {
        let a = sample(5);
        let ta = TileMatrix::from_csr(&a);
        let tb = TileMatrix::from_csr(&a.clone());
        assert_eq!(ta.content_hash(), tb.content_hash());
        // Tiled and CSR forms of the same matrix live in different hash
        // domains, so their ids never alias.
        assert_ne!(ta.content_hash(), a.content_hash());
        let tc = TileMatrix::from_csr(&sample(6));
        assert_ne!(ta.content_hash(), tc.content_hash());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector: empty input hashes to the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
