//! Coordinate (triplet) format.
//!
//! The interchange format: generators emit triplets, Matrix Market files
//! parse into triplets, and [`Coo::to_csr`] is the canonicalising step
//! (sort, then sum duplicates) every pipeline starts from.

use crate::{Csr, FormatError, Scalar};

/// A sparse matrix as an unordered list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// The triplets, in no particular order; duplicates are allowed and are
    /// summed by [`Coo::to_csr`].
    pub entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> Coo<T> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Builds from triplets, validating the indices against the shape.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        entries: Vec<(u32, u32, T)>,
    ) -> Result<Self, FormatError> {
        for &(r, c, _) in &entries {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(FormatError::Invalid(format!(
                    "triplet ({r}, {c}) out of bounds for {nrows}x{ncols}"
                )));
            }
        }
        Ok(Self {
            nrows,
            ncols,
            entries,
        })
    }

    /// Appends one triplet (unchecked against the shape until conversion).
    pub fn push(&mut self, row: u32, col: u32, value: T) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.entries.push((row, col, value));
    }

    /// Number of stored triplets (before duplicate folding).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sorts by `(row, col)` and folds duplicate coordinates by summation,
    /// dropping entries that cancel to exactly zero.
    pub fn sort_dedup_sum(&mut self) {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut out = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            let mut j = i + 1;
            while j < self.entries.len() && self.entries[j].0 == r && self.entries[j].1 == c {
                v += self.entries[j].2;
                j += 1;
            }
            if v != T::ZERO {
                self.entries[out] = (r, c, v);
                out += 1;
            }
            i = j;
        }
        self.entries.truncate(out);
    }

    /// Converts to CSR, canonicalising first (sorted rows, summed
    /// duplicates, no numerically-zero duplicates left behind).
    pub fn to_csr(mut self) -> Csr<T> {
        self.sort_dedup_sum();
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &self.entries {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        for (_, c, v) in self.entries {
            colidx.push(c);
            vals.push(v);
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Rebuilds triplet form from CSR (sorted order).
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let mut entries = Vec::with_capacity(csr.nnz());
        for row in 0..csr.nrows {
            let (cols, vals) = csr.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                entries.push((row as u32, c, v));
            }
        }
        Self {
            nrows: csr.nrows,
            ncols: csr.ncols,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_csr_sorts_rows_and_sums_duplicates() {
        let coo = Coo::from_triplets(
            3,
            3,
            vec![
                (2, 1, 4.0),
                (0, 2, 1.0),
                (0, 0, 2.0),
                (0, 2, 3.0), // duplicate of (0, 2)
            ],
        )
        .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.rowptr, vec![0, 2, 2, 3]);
        assert_eq!(csr.colidx, vec![0, 2, 1]);
        assert_eq!(csr.vals, vec![2.0, 4.0, 4.0]);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, -1.0), (1, 1, 5.0)]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.row(1), (&[1u32][..], &[5.0][..]));
    }

    #[test]
    fn out_of_bounds_triplets_are_rejected() {
        let err = Coo::from_triplets(2, 2, vec![(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, FormatError::Invalid(_)));
    }

    #[test]
    fn round_trip_through_csr() {
        let mut coo = Coo::new(4, 5);
        coo.push(3, 4, 1.5);
        coo.push(0, 0, -2.0);
        coo.push(1, 2, 0.5);
        let csr = coo.clone().to_csr();
        let mut back = Coo::from_csr(&csr);
        back.sort_dedup_sum();
        let mut expect = coo;
        expect.sort_dedup_sum();
        assert_eq!(back, expect);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo: Coo<f64> = Coo::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rowptr, vec![0, 0, 0, 0]);
    }
}
