#![warn(missing_docs)]

//! # tsg-matrix — sparse matrix formats for the TileSpGEMM reproduction
//!
//! This crate implements every storage format the paper touches:
//!
//! * [`coo::Coo`] — triplet form, the interchange/builder format (and what
//!   Matrix Market files parse into);
//! * [`csr::Csr`] — compressed sparse row, the input/output format of all
//!   row-row baselines and the conversion source for the tiled format;
//! * [`csc::Csc`] — compressed sparse column, used by `AAᵀ` plumbing;
//! * [`dense::Dense`] — small dense matrices for brute-force oracles;
//! * [`csb`] — Buluç et al.'s Compressed Sparse Blocks in the two variants
//!   (CSB-M, CSB-I) the paper's Figure 11 compares against;
//! * [`tile::TileMatrix`] — **the paper's sparse-tile format** (§3.2): the
//!   matrix as a CSR-of-16×16-tiles, each tile stored CSR-style with 8-bit
//!   local indices and pointers plus 16-bit row bitmasks.
//!
//! Plus [`io`] (Matrix Market), [`ops`] (element-wise operations used by the
//! example applications), and [`footprint`] (byte-exact space accounting for
//! the Figure 11 comparison).
//!
//! All formats are generic over a [`Scalar`] (`f64` throughout the main
//! evaluation; `f32` for the tSparse/tensor-core comparison of §4.7).

pub mod coo;
pub mod csb;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod footprint;
pub mod halfsim;
pub mod hash;
pub mod io;
pub mod ops;
pub mod tile;
pub mod tile_model;

pub use coo::Coo;
pub use csb::{CsbI, CsbM};
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use footprint::Footprint;
pub use hash::Fnv1a;
pub use tile::{ListBitmaps, TileColIndex, TileMatrix, TileView, TILE_AREA, TILE_DIM};

use std::fmt;

/// Numeric element type abstraction: the subset of float behaviour the
/// SpGEMM kernels need, implemented for `f32` and `f64`.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lossy conversion from `f64` (used by generators and parsers).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by error metrics and reports).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

/// Errors raised by format constructors and converters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// A structural invariant of the format was violated.
    Invalid(String),
    /// An I/O or parse problem (Matrix Market).
    Parse(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Invalid(msg) => write!(f, "invalid matrix structure: {msg}"),
            FormatError::Parse(msg) => write!(f, "matrix parse error: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constants_and_conversions() {
        assert_eq!(<f64 as Scalar>::ZERO + <f64 as Scalar>::ONE, 1.0);
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(Scalar::abs(-3.0f64), 3.0);
        assert_eq!(Scalar::abs(-3.0f32), 3.0);
    }

    #[test]
    fn format_error_displays() {
        let e = FormatError::Invalid("rowptr not monotone".into());
        assert!(e.to_string().contains("rowptr"));
        let p = FormatError::Parse("bad header".into());
        assert!(p.to_string().contains("bad header"));
    }
}
