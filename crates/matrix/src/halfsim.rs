//! Software IEEE 754 binary16 ("half") conversion.
//!
//! §4.7 compares against tSparse in *half precision input, single precision
//! output* — the tensor-core `hh→s` contract. Rust has no stable `f16`, so
//! this module provides bit-exact `f32 ↔ binary16` conversion (round to
//! nearest, ties to even, with subnormals, infinities and NaN) and a
//! quantisation helper: the Figure 13/14 harness pushes both methods'
//! *inputs* through binary16 and lets the arithmetic run in `f32`, exactly
//! the tensor-core data path.

use crate::{Csr, Scalar};

/// Converts an `f32` to its binary16 bit pattern (round to nearest even).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN.
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, rebiasing from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal half. 23 -> 10 fraction bits: round at bit 13.
        let mantissa = frac >> 13;
        let round_bits = frac & 0x1FFF;
        let mut h = sign | (((unbiased + 15) as u16) << 10) | mantissa as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mantissa & 1) == 1) {
            h = h.wrapping_add(1); // may carry into the exponent: correct
        }
        return h;
    }
    if unbiased >= -24 {
        // Subnormal half: implicit leading one becomes explicit.
        let full = 0x0080_0000 | frac;
        let shift = (-14 - unbiased) + 13;
        let mantissa = full >> shift;
        let round_mask = (1u32 << shift) - 1;
        let round_bits = full & round_mask;
        let half_point = 1u32 << (shift - 1);
        let mut h = sign | mantissa as u16;
        if round_bits > half_point || (round_bits == half_point && (mantissa & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow -> signed zero
}

/// Converts a binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x03FF) as u32;
    let bits = match (exp, frac) {
        (0, 0) => sign,
        (0, _) => {
            // Subnormal: value = frac * 2^-24. Normalise: with the leading
            // one of `frac` at bit p, the f32 exponent is p - 24 + 127 and
            // shifting by `lead = 10 - p` moves that bit to position 10,
            // where the `& 0x3FF` strips it off as the implicit one.
            let lead = frac.leading_zeros() - 21;
            let frac_n = (frac << lead) & 0x03FF;
            let exp_n = 113 - lead;
            sign | (exp_n << 23) | (frac_n << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, _) => sign | 0x7FC0_0000 | (frac << 13),
        _ => sign | ((exp + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(bits)
}

/// Rounds a value through binary16 and back (the precision loss of loading
/// it into a tensor-core fragment).
pub fn quantize_f16(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

/// Quantises every stored value of a matrix through binary16, keeping the
/// pattern. Values that round to ±0 are retained as explicit zeros (the
/// hardware keeps the lanes).
pub fn quantize_csr<T: Scalar>(a: &Csr<T>) -> Csr<f32> {
    Csr {
        nrows: a.nrows,
        ncols: a.ncols,
        rowptr: a.rowptr.clone(),
        colidx: a.colidx.clone(),
        vals: a
            .vals
            .iter()
            .map(|v| quantize_f16(v.to_f64() as f32))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [-8.0f32, -1.0, -0.5, 0.0, 0.25, 1.0, 2.0, 1024.0, 2048.0] {
            assert_eq!(quantize_f16(v), v, "{v} should be exact in half");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly half-way between 1 and the next half value
        // (1 + 2^-10); ties-to-even rounds down to 1.
        assert_eq!(quantize_f16(1.0 + f32::powi(2.0, -11)), 1.0);
        // Just above the tie rounds up.
        assert_eq!(
            quantize_f16(1.0 + f32::powi(2.0, -11) + f32::powi(2.0, -16)),
            1.0 + f32::powi(2.0, -10)
        );
        // The next representable tie (1 + 3*2^-11) rounds up to even.
        assert_eq!(
            quantize_f16(1.0 + 3.0 * f32::powi(2.0, -11)),
            1.0 + 2.0 * f32::powi(2.0, -10)
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(quantize_f16(70_000.0), f32::INFINITY);
        assert_eq!(quantize_f16(-70_000.0), f32::NEG_INFINITY);
        // Largest finite half value.
        assert_eq!(quantize_f16(65_504.0), 65_504.0);
    }

    #[test]
    fn subnormals_are_preserved() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = f32::powi(2.0, -24);
        assert_eq!(quantize_f16(tiny), tiny);
        // Below half of it underflows to zero.
        assert_eq!(quantize_f16(f32::powi(2.0, -26)), 0.0);
        // A mid-range subnormal.
        let sub = 3.0 * f32::powi(2.0, -24);
        assert_eq!(quantize_f16(sub), sub);
    }

    #[test]
    fn nan_and_inf_survive() {
        assert!(quantize_f16(f32::NAN).is_nan());
        assert_eq!(quantize_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(quantize_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn relative_error_is_bounded_by_half_epsilon() {
        // 2^-11 relative error bound for normal halves.
        let mut state = 0x1234_5678u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = ((state % 130_000) as f32 / 1000.0) - 65.0;
            if v == 0.0 {
                continue;
            }
            let q = quantize_f16(v);
            let rel = ((q - v) / v).abs();
            assert!(rel <= f32::powi(2.0, -11), "v={v} q={q} rel={rel}");
        }
    }

    #[test]
    fn quantize_csr_keeps_pattern() {
        let a = crate::Csr::from_parts(
            2,
            2,
            vec![0, 1, 2],
            vec![0, 1],
            vec![1.0 + 1e-5, 70_000.0f64],
        )
        .unwrap();
        let q = quantize_csr(&a);
        assert_eq!(q.colidx, a.colidx);
        assert_eq!(q.vals[0], 1.0); // 1e-5 is below half resolution at 1.0
        assert_eq!(q.vals[1], f32::INFINITY);
    }

    #[test]
    fn all_half_bit_patterns_round_trip_through_f32() {
        // Exhaustive: every finite half value must convert to f32 and back
        // to the identical bit pattern.
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // inf/NaN payloads handled separately
            }
            let f = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(f);
            assert_eq!(back, h, "bit pattern {h:#06x} -> {f} -> {back:#06x}");
        }
    }
}
