//! Byte-exact space accounting for Figure 11 (format space comparison) and
//! the paper's artifact output line 7 ("data structure's space consumption").
//!
//! Each format reports the bytes of its index structure and payload exactly
//! as stored: e.g. the tiled format pays `16 × u8` row pointers and
//! `16 × u16` masks per tile on top of per-nonzero `u8` locals, which is why
//! it sits above CSB but (for index data) below CSR's 4-byte column indices.

use crate::{Coo, CsbI, CsbM, Csc, Csr, Scalar, TileMatrix, TILE_DIM};

/// One labelled component of a format's storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Array name, matching the paper's terminology where it has one.
    pub name: &'static str,
    /// Bytes occupied.
    pub bytes: usize,
}

/// Formats that can report their exact storage cost.
pub trait Footprint {
    /// Labelled per-array byte counts.
    fn components(&self) -> Vec<Component>;

    /// Total bytes.
    fn bytes(&self) -> usize {
        self.components().iter().map(|c| c.bytes).sum()
    }
}

fn comp(name: &'static str, bytes: usize) -> Component {
    Component { name, bytes }
}

impl<T: Scalar> Footprint for Csr<T> {
    fn components(&self) -> Vec<Component> {
        vec![
            comp("rowptr", self.rowptr.len() * std::mem::size_of::<usize>()),
            comp("colidx", self.colidx.len() * std::mem::size_of::<u32>()),
            comp("vals", self.vals.len() * std::mem::size_of::<T>()),
        ]
    }
}

impl<T: Scalar> Footprint for Csc<T> {
    fn components(&self) -> Vec<Component> {
        vec![
            comp("colptr", self.colptr.len() * std::mem::size_of::<usize>()),
            comp("rowidx", self.rowidx.len() * std::mem::size_of::<u32>()),
            comp("vals", self.vals.len() * std::mem::size_of::<T>()),
        ]
    }
}

impl<T: Scalar> Footprint for Coo<T> {
    fn components(&self) -> Vec<Component> {
        vec![comp(
            "triplets",
            self.entries.len() * std::mem::size_of::<(u32, u32, T)>(),
        )]
    }
}

impl<T: Scalar> Footprint for TileMatrix<T> {
    fn components(&self) -> Vec<Component> {
        vec![
            comp(
                "tilePtr",
                self.tile_ptr.len() * std::mem::size_of::<usize>(),
            ),
            comp(
                "tileColIdx",
                self.tile_colidx.len() * std::mem::size_of::<u32>(),
            ),
            comp(
                "tileNnz",
                self.tile_nnz.len() * std::mem::size_of::<usize>(),
            ),
            comp("rowPtr", self.row_ptr.len()),
            comp("rowIdx", self.row_idx.len()),
            comp("colIdx", self.col_idx.len()),
            comp("mask", self.masks.len() * std::mem::size_of::<u16>()),
            comp("val", self.vals.len() * std::mem::size_of::<T>()),
        ]
    }
}

impl<T: Scalar> Footprint for CsbI<T> {
    fn components(&self) -> Vec<Component> {
        vec![
            comp("blkptr", self.blkptr.len() * std::mem::size_of::<usize>()),
            comp("lrow", self.lrow.len() * std::mem::size_of::<u16>()),
            comp("lcol", self.lcol.len() * std::mem::size_of::<u16>()),
            comp("vals", self.vals.len() * std::mem::size_of::<T>()),
        ]
    }
}

impl<T: Scalar> Footprint for CsbM<T> {
    fn components(&self) -> Vec<Component> {
        vec![
            comp("blkptr", self.blkptr.len() * std::mem::size_of::<usize>()),
            comp("lidx", self.lidx.len() * std::mem::size_of::<u16>()),
            comp("vals", self.vals.len() * std::mem::size_of::<T>()),
        ]
    }
}

/// Index-only bytes (everything except values) — the quantity that actually
/// differs between formats for a fixed matrix.
pub fn index_bytes<F: Footprint>(f: &F) -> usize {
    f.components()
        .iter()
        .filter(|c| c.name != "vals" && c.name != "val")
        .map(|c| c.bytes)
        .sum()
}

/// Space model documented in DESIGN.md: per-tile overhead of the tiled
/// format (row pointers + masks) in bytes.
pub const TILE_OVERHEAD_BYTES: usize = TILE_DIM + TILE_DIM * 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::new(64, 64);
        let mut state = 0x9e3779b9u64;
        for _ in 0..600 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            coo.push((state % 64) as u32, (state / 64 % 64) as u32, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn csr_bytes_match_formula() {
        let a = sample();
        let expect = (a.nrows + 1) * 8 + a.nnz() * 4 + a.nnz() * 8;
        assert_eq!(a.bytes(), expect);
    }

    #[test]
    fn tiled_components_follow_the_paper_layout() {
        let a = sample();
        let t = TileMatrix::from_csr(&a);
        let by_name: std::collections::BTreeMap<_, _> = t
            .components()
            .into_iter()
            .map(|c| (c.name, c.bytes))
            .collect();
        assert_eq!(by_name["rowPtr"], t.tile_count() * 16);
        assert_eq!(by_name["mask"], t.tile_count() * 32);
        assert_eq!(by_name["rowIdx"], t.nnz());
        assert_eq!(by_name["colIdx"], t.nnz());
        assert_eq!(by_name["val"], t.nnz() * 8);
    }

    #[test]
    fn csb_m_index_is_smaller_than_csb_i() {
        let a = sample();
        let m = CsbM::from_csr_with_beta(&a, 32).unwrap();
        let i = CsbI::from_csr_with_beta(&a, 32).unwrap();
        assert!(index_bytes(&m) < index_bytes(&i));
        // Same values payload.
        assert_eq!(m.bytes() - index_bytes(&m), i.bytes() - index_bytes(&i));
    }

    #[test]
    fn figure11_csb_beats_tiled_on_scattered_structure() {
        // On matrices whose nonzeros scatter into many sparse tiles, the
        // tiled format's fixed 48 B/tile (rowPtr + mask) dominates, so both
        // CSB variants — whose per-tile cost is one pointer-grid slot — use
        // less index space. This is exactly the regime behind the paper's
        // Figure 11 averages (tiled ≈ 113 MB and 82 MB above CSB-M/CSB-I).
        let mut coo = Coo::new(2048, 2048);
        let mut state = 0xabcdef12u64;
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            coo.push((state % 2048) as u32, (state / 4096 % 2048) as u32, 1.0);
        }
        let a = coo.to_csr();
        let tiled = TileMatrix::from_csr(&a);
        let csb_m = CsbM::from_csr(&a); // beta = 64 (≈ sqrt n)
        let csb_i = CsbI::from_csr(&a);
        assert!(index_bytes(&csb_m) < index_bytes(&csb_i));
        assert!(index_bytes(&csb_i) < index_bytes(&tiled));
    }

    #[test]
    fn figure11_tiled_beats_csr_on_clustered_structure() {
        // Dense 16x16 blocks: 2 B of locals per nonzero plus well-amortised
        // tile overhead undercut CSR's 4 B column indices — the regime where
        // the paper reports the tiled format saving ~31 MB over CSR.
        let mut coo = Coo::new(256, 256);
        for b in 0..16u32 {
            for r in 0..16u32 {
                for c in 0..16u32 {
                    coo.push(b * 16 + r, b * 16 + c, 1.0);
                }
            }
        }
        let a = coo.to_csr();
        let tiled = TileMatrix::from_csr(&a);
        assert!(index_bytes(&tiled) < index_bytes(&a));
    }
}
