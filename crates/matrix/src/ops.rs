//! Element-wise and structural operations on CSR matrices.
//!
//! These are the operations the paper's motivating applications need around
//! SpGEMM: algebraic multigrid (Galerkin triple products need transposes and
//! sums), triangle counting (Hadamard mask and trace), and Markov clustering
//! (column normalisation, element-wise powers, pruning). The example binaries
//! in the workspace root exercise them.

use crate::{Csr, Scalar};
use rayon::prelude::*;

/// `C = alpha*A + beta*B` with matching shapes (two-pointer row merge).
pub fn add<T: Scalar>(alpha: T, a: &Csr<T>, beta: T, b: &Csr<T>) -> Csr<T> {
    assert_eq!((a.nrows, a.ncols), (b.nrows, b.ncols), "shape mismatch");
    let rows: Vec<(Vec<u32>, Vec<T>)> = (0..a.nrows)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                let take_a = q >= bc.len() || (p < ac.len() && ac[p] < bc[q]);
                let take_b = p >= ac.len() || (q < bc.len() && bc[q] < ac[p]);
                if take_a {
                    cols.push(ac[p]);
                    vals.push(alpha * av[p]);
                    p += 1;
                } else if take_b {
                    cols.push(bc[q]);
                    vals.push(beta * bv[q]);
                    q += 1;
                } else {
                    let v = alpha * av[p] + beta * bv[q];
                    if v != T::ZERO {
                        cols.push(ac[p]);
                        vals.push(v);
                    }
                    p += 1;
                    q += 1;
                }
            }
            (cols, vals)
        })
        .collect();
    assemble(a.nrows, a.ncols, rows)
}

/// Element-wise (Hadamard) product `C = A ∘ B`.
pub fn hadamard<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    assert_eq!((a.nrows, a.ncols), (b.nrows, b.ncols), "shape mismatch");
    let rows: Vec<(Vec<u32>, Vec<T>)> = (0..a.nrows)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        let v = av[p] * bv[q];
                        if v != T::ZERO {
                            cols.push(ac[p]);
                            vals.push(v);
                        }
                        p += 1;
                        q += 1;
                    }
                }
            }
            (cols, vals)
        })
        .collect();
    assemble(a.nrows, a.ncols, rows)
}

fn assemble<T: Scalar>(nrows: usize, ncols: usize, rows: Vec<(Vec<u32>, Vec<T>)>) -> Csr<T> {
    let mut rowptr = vec![0usize; nrows + 1];
    for (i, (cols, _)) in rows.iter().enumerate() {
        rowptr[i + 1] = rowptr[i] + cols.len();
    }
    let nnz = rowptr[nrows];
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (cols, v) in rows {
        colidx.extend_from_slice(&cols);
        vals.extend_from_slice(&v);
    }
    Csr {
        nrows,
        ncols,
        rowptr,
        colidx,
        vals,
    }
}

/// Sum of diagonal entries.
pub fn trace<T: Scalar>(a: &Csr<T>) -> T {
    let mut acc = T::ZERO;
    for i in 0..a.nrows.min(a.ncols) {
        if let Some(v) = a.get(i, i as u32) {
            acc += v;
        }
    }
    acc
}

/// Sum of all stored values.
pub fn sum_all<T: Scalar>(a: &Csr<T>) -> T {
    let mut acc = T::ZERO;
    for &v in &a.vals {
        acc += v;
    }
    acc
}

/// Scales every column so it sums to one (columns summing to zero are left
/// untouched). The Markov-clustering normalisation step.
pub fn normalize_columns<T: Scalar>(a: &Csr<T>) -> Csr<T> {
    let mut colsum = vec![T::ZERO; a.ncols];
    for row in 0..a.nrows {
        let (cols, vals) = a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            colsum[c as usize] += v;
        }
    }
    let mut out = a.clone();
    for row in 0..out.nrows {
        let range = out.rowptr[row]..out.rowptr[row + 1];
        for k in range {
            let s = colsum[out.colidx[k] as usize];
            if s != T::ZERO {
                out.vals[k] = out.vals[k] / s;
            }
        }
    }
    out
}

/// Removes the diagonal.
pub fn remove_diagonal<T: Scalar>(a: &Csr<T>) -> Csr<T> {
    let mut rowptr = vec![0usize; a.nrows + 1];
    let mut colidx = Vec::with_capacity(a.nnz());
    let mut vals = Vec::with_capacity(a.nnz());
    for row in 0..a.nrows {
        let (cols, rvals) = a.row(row);
        for (&c, &v) in cols.iter().zip(rvals) {
            if c as usize != row {
                colidx.push(c);
                vals.push(v);
            }
        }
        rowptr[row + 1] = colidx.len();
    }
    Csr {
        nrows: a.nrows,
        ncols: a.ncols,
        rowptr,
        colidx,
        vals,
    }
}

/// Makes a pattern symmetric: `B = A ∪ Aᵀ` with all values one.
pub fn symmetrize_pattern<T: Scalar>(a: &Csr<T>) -> Csr<T> {
    let ones = a.map_values(|_| T::ONE);
    let t = ones.transpose();
    // max(A, Aᵀ) over the union: adding then clamping to one does the job
    // for 0/1 patterns.
    add(T::ONE, &ones, T::ONE, &t).map_values(|_| T::ONE)
}

/// Frobenius norm of the difference, in `f64`.
pub fn frobenius_diff<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> f64 {
    let d = add(T::ONE, a, -T::ONE, b);
    d.vals
        .iter()
        .map(|v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coo, Dense};

    fn a() -> Csr<f64> {
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 1, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    fn b() -> Csr<f64> {
        Csr::from_parts(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![1, 0, 1, 2],
            vec![10.0, 20.0, 30.0, 40.0],
        )
        .unwrap()
    }

    #[test]
    fn add_matches_dense() {
        let c = add(2.0, &a(), -1.0, &b());
        let expect = {
            let mut d = Dense::from_csr(&a());
            for v in d.data.iter_mut() {
                *v *= 2.0;
            }
            let db = Dense::from_csr(&b());
            for (x, y) in d.data.iter_mut().zip(&db.data) {
                *x -= *y;
            }
            d.to_csr()
        };
        assert_eq!(c, expect);
        c.validate().unwrap();
    }

    #[test]
    fn add_drops_exact_cancellations() {
        let c = add(1.0, &a(), -1.0, &a());
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn hadamard_matches_dense() {
        let c = hadamard(&a(), &b());
        let da = Dense::from_csr(&a());
        let db = Dense::from_csr(&b());
        let mut expect = Dense::zero(3, 3);
        for k in 0..9 {
            expect.data[k] = da.data[k] * db.data[k];
        }
        assert_eq!(c, expect.to_csr());
    }

    #[test]
    fn trace_and_sum() {
        assert_eq!(trace(&a()), 1.0 + 3.0 + 5.0);
        assert_eq!(sum_all(&a()), 15.0);
    }

    #[test]
    fn column_normalisation_sums_to_one() {
        let n = normalize_columns(&a());
        let mut colsum = [0.0f64; 3];
        for row in 0..3 {
            let (cols, vals) = n.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                colsum[c as usize] += v;
            }
        }
        for s in colsum {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn remove_diagonal_removes_only_diagonal() {
        let r = remove_diagonal(&a());
        assert_eq!(r.nnz(), 2);
        assert_eq!(r.get(0, 1), Some(2.0));
        assert_eq!(r.get(2, 0), Some(4.0));
        assert_eq!(r.get(0, 0), None);
    }

    #[test]
    fn symmetrize_pattern_is_symmetric() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 2.0);
        let s = symmetrize_pattern(&coo.to_csr());
        assert_eq!(s.get(0, 2), Some(1.0));
        assert_eq!(s.get(2, 0), Some(1.0));
        assert_eq!(s.get(0, 1), Some(1.0));
        assert_eq!(s.get(1, 0), Some(1.0));
        assert_eq!(s, s.transpose());
    }

    #[test]
    fn frobenius_diff_of_equal_is_zero() {
        assert_eq!(frobenius_diff(&a(), &a()), 0.0);
        assert!(frobenius_diff(&a(), &b()) > 0.0);
    }
}
