//! Tile-size space modelling — the ablation behind §3.2's choice of 16×16.
//!
//! The paper fixes the tile dimension at 16 because it exactly saturates the
//! narrow types: 4-bit local coordinates (two per `u8`), `u8` local row
//! pointers (≤ 240), and `u16` row bitmasks. Smaller tiles waste those
//! types' width and multiply the per-tile overhead; larger tiles overflow
//! them into wider types. This module quantifies that argument: it counts
//! the occupied tiles of a matrix at any power-of-two dimension and applies
//! the storage model of the tiled format generalised to that dimension, so
//! the `tile_size_ablation` harness can show 16 minimising (or nearly
//! minimising) bytes across the dataset's structure classes.

use crate::{Csr, Scalar};
use std::collections::HashMap;

/// Occupancy of a `dim × dim` tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOccupancy {
    /// Tile edge length.
    pub dim: usize,
    /// Number of non-empty tiles.
    pub tiles: usize,
    /// Nonzeros covered (always the matrix's nnz).
    pub nnz: usize,
}

/// Counts the non-empty `dim × dim` tiles of a matrix.
pub fn occupancy<T: Scalar>(a: &Csr<T>, dim: usize) -> TileOccupancy {
    assert!(
        dim.is_power_of_two() && dim >= 2,
        "dim must be a power of two >= 2"
    );
    let shift = dim.trailing_zeros();
    let mut tiles: HashMap<u64, ()> = HashMap::new();
    for row in 0..a.nrows {
        let tr = (row >> shift) as u64;
        for &c in a.row(row).0 {
            let tc = (c >> shift) as u64;
            tiles.insert((tr << 32) | tc, ());
        }
    }
    TileOccupancy {
        dim,
        tiles: tiles.len(),
        nnz: a.nnz(),
    }
}

/// Bytes per nonzero of local-coordinate storage at dimension `dim`: the
/// row/col pair needs `2·log2(dim)` bits, rounded up to whole bytes.
pub fn local_index_bytes_per_nnz(dim: usize) -> usize {
    let bits = 2 * dim.trailing_zeros() as usize;
    bits.div_ceil(8)
}

/// Per-tile fixed overhead at dimension `dim`:
/// * `dim` local row pointers, each wide enough for `dim·(dim-1)` (the
///   largest stored pointer value);
/// * `dim` row bitmasks of `dim` bits each;
/// * the high-level entry (tile column index + nnz offset ≈ 12 bytes).
pub fn per_tile_overhead_bytes(dim: usize) -> usize {
    let ptr_width = if dim * (dim - 1) <= u8::MAX as usize {
        1
    } else if dim * (dim - 1) <= u16::MAX as usize {
        2
    } else {
        4
    };
    let mask_bytes = dim * dim.div_ceil(8);
    dim * ptr_width + mask_bytes + 12
}

/// Total modelled bytes for a `dim × dim` tiling of the given occupancy
/// (index structure + `val_bytes`-wide values).
pub fn modelled_bytes(occ: TileOccupancy, val_bytes: usize) -> usize {
    occ.tiles * per_tile_overhead_bytes(occ.dim)
        + occ.nnz * (local_index_bytes_per_nnz(occ.dim) + val_bytes)
}

/// Evaluates the model across dimensions 4–64 and returns
/// `(dim, tiles, bytes)` triples.
pub fn sweep_dims<T: Scalar>(a: &Csr<T>) -> Vec<(usize, usize, usize)> {
    [4usize, 8, 16, 32, 64]
        .into_iter()
        .map(|dim| {
            let occ = occupancy(a, dim);
            (
                dim,
                occ.tiles,
                modelled_bytes(occ, std::mem::size_of::<T>()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coo, TileMatrix};

    fn clustered() -> Csr<f64> {
        // Dense 16x16 diagonal blocks.
        let mut coo = Coo::new(128, 128);
        for b in 0..8u32 {
            for r in 0..16u32 {
                for c in 0..16u32 {
                    coo.push(b * 16 + r, b * 16 + c, 1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn occupancy_counts_exactly() {
        let a = clustered();
        assert_eq!(occupancy(&a, 16).tiles, 8);
        assert_eq!(occupancy(&a, 8).tiles, 32); // each block covers 4
        assert_eq!(occupancy(&a, 32).tiles, 4); // two blocks per 32-tile
        assert_eq!(occupancy(&a, 16).nnz, a.nnz());
    }

    #[test]
    fn occupancy_at_16_matches_real_conversion() {
        let mut coo = Coo::new(200, 200);
        let mut state = 5u64;
        for _ in 0..1500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            coo.push((state % 200) as u32, (state / 256 % 200) as u32, 1.0);
        }
        let a = coo.to_csr();
        let real = TileMatrix::from_csr(&a);
        assert_eq!(occupancy(&a, 16).tiles, real.tile_count());
    }

    #[test]
    fn index_widths_follow_the_paper_argument() {
        // 16: two 4-bit locals fit one byte; pointers fit u8; masks are u16.
        assert_eq!(local_index_bytes_per_nnz(16), 1);
        assert_eq!(per_tile_overhead_bytes(16), 16 + 32 + 12);
        // 32 overflows: pointers need u16, masks are 32x4 bytes.
        assert_eq!(local_index_bytes_per_nnz(32), 2);
        assert_eq!(per_tile_overhead_bytes(32), 64 + 128 + 12);
        // 8 wastes nothing per nonzero but multiplies tile count.
        assert_eq!(local_index_bytes_per_nnz(8), 1);
    }

    #[test]
    fn sixteen_wins_on_clustered_structure() {
        let a = clustered();
        let sweep = sweep_dims(&a);
        let best = sweep.iter().min_by_key(|&&(_, _, bytes)| bytes).unwrap();
        assert_eq!(best.0, 16, "sweep: {sweep:?}");
    }

    #[test]
    fn model_at_16_tracks_real_footprint() {
        use crate::Footprint;
        let a = clustered();
        let real = TileMatrix::from_csr(&a).bytes();
        let occ = occupancy(&a, 16);
        let modelled = modelled_bytes(occ, 8);
        // The model folds rowIdx+colIdx into one packed byte while the
        // implementation stores two (paper-faithful) bytes; allow that gap.
        let diff = real.abs_diff(modelled) as f64 / real as f64;
        assert!(diff < 0.35, "model {modelled} vs real {real}");
    }
}
