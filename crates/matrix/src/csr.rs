//! Compressed Sparse Row.
//!
//! The lingua franca of the row-row SpGEMM world (Algorithm 1 of the paper)
//! and the source/target of the tiled-format conversion measured in
//! Figure 12. Rows are kept with ascending column indices; constructors
//! validate that invariant and conversions preserve it.

use crate::{Coo, FormatError, Scalar};
use rayon::prelude::*;

/// A sparse matrix in CSR form with sorted rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row pointers, length `nrows + 1`.
    pub rowptr: Vec<usize>,
    /// Column indices, length `nnz`, ascending within each row.
    pub colidx: Vec<u32>,
    /// Values, length `nnz`.
    pub vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `n`-by-`n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n as u32).collect(),
            vals: vec![T::ONE; n],
        }
    }

    /// Builds from raw parts, validating every CSR invariant (pointer
    /// monotonicity, array lengths, index bounds, sorted + unique columns).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self, FormatError> {
        let m = Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks all structural invariants.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.rowptr.len() != self.nrows + 1 {
            return Err(FormatError::Invalid(format!(
                "rowptr length {} != nrows + 1 = {}",
                self.rowptr.len(),
                self.nrows + 1
            )));
        }
        if self.rowptr[0] != 0 {
            return Err(FormatError::Invalid("rowptr[0] != 0".into()));
        }
        if *self.rowptr.last().unwrap() != self.colidx.len() {
            return Err(FormatError::Invalid(
                "rowptr end does not match colidx length".into(),
            ));
        }
        if self.colidx.len() != self.vals.len() {
            return Err(FormatError::Invalid(
                "colidx and vals lengths differ".into(),
            ));
        }
        for w in self.rowptr.windows(2) {
            if w[0] > w[1] {
                return Err(FormatError::Invalid("rowptr not non-decreasing".into()));
            }
        }
        for row in 0..self.nrows {
            let cols = &self.colidx[self.rowptr[row]..self.rowptr[row + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(FormatError::Invalid(format!(
                        "row {row} columns not strictly ascending"
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.ncols {
                    return Err(FormatError::Invalid(format!(
                        "row {row} column {last} out of bounds"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let range = self.rowptr[i]..self.rowptr[i + 1];
        (&self.colidx[range.clone()], &self.vals[range])
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// The value at `(row, col)`, if stored.
    pub fn get(&self, row: usize, col: u32) -> Option<T> {
        let (cols, vals) = self.row(row);
        cols.binary_search(&col).ok().map(|k| vals[k])
    }

    /// Transpose via counting sort on column indices: `O(nnz + n)`.
    pub fn transpose(&self) -> Csr<T> {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cursor = rowptr[..self.ncols].to_vec();
        let mut colidx = vec![0u32; self.nnz()];
        let mut vals = vec![T::ZERO; self.nnz()];
        for row in 0..self.nrows {
            let (cols, rvals) = self.row(row);
            for (&c, &v) in cols.iter().zip(rvals) {
                let dst = cursor[c as usize];
                colidx[dst] = row as u32;
                vals[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        // Scanning rows in ascending order makes each transposed row sorted.
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Triplet form of this matrix.
    pub fn to_coo(&self) -> Coo<T> {
        Coo::from_csr(self)
    }

    /// The number of multiply–add *operand pairs* of `self * other` per row
    /// of `self`: `ub(i) = Σ_{j ∈ row i} nnz(other.row(j))`.
    ///
    /// This is the upper bound ("intermediate products") every binning
    /// baseline uses, and twice it is the flop count the paper reports
    /// (`#flops = 2 × Σ ub`, Table 2).
    pub fn row_upper_bounds(&self, other: &Csr<T>) -> Vec<usize> {
        assert_eq!(self.ncols, other.nrows, "inner dimensions must agree");
        (0..self.nrows)
            .into_par_iter()
            .map(|i| {
                let (cols, _) = self.row(i);
                cols.iter().map(|&j| other.row_nnz(j as usize)).sum()
            })
            .collect()
    }

    /// Total flop count of `self * other` as the paper counts it
    /// (2 floating-point ops per intermediate product).
    pub fn spgemm_flops(&self, other: &Csr<T>) -> u64 {
        2 * self
            .row_upper_bounds(other)
            .iter()
            .map(|&u| u as u64)
            .sum::<u64>()
    }

    /// Drops entries with `|v| <= threshold`, returning the pruned matrix.
    pub fn prune(&self, threshold: T) -> Csr<T> {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for row in 0..self.nrows {
            let (cols, rvals) = self.row(row);
            for (&c, &v) in cols.iter().zip(rvals) {
                if v.abs() > threshold {
                    colidx.push(c);
                    vals.push(v);
                }
            }
            rowptr[row + 1] = colidx.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Drops stored entries whose value is exactly zero.
    pub fn drop_numeric_zeros(&self) -> Csr<T> {
        self.prune(T::ZERO)
    }

    /// True if the two matrices have the same shape and pattern, and values
    /// agree within `tol` (absolute, compared in `f64`).
    pub fn approx_eq(&self, other: &Csr<T>, tol: f64) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
            && self
                .vals
                .iter()
                .zip(&other.vals)
                .all(|(a, b)| (a.to_f64() - b.to_f64()).abs() <= tol)
    }

    /// Like [`Self::approx_eq`] but with a relative tolerance, and treating
    /// stored exact zeros on either side as absent — appropriate when two
    /// SpGEMM implementations may disagree about keeping cancelled entries.
    pub fn approx_eq_ignoring_zeros(&self, other: &Csr<T>, rel_tol: f64) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        let a = self.drop_numeric_zeros();
        let b = other.drop_numeric_zeros();
        if a.rowptr != b.rowptr || a.colidx != b.colidx {
            return false;
        }
        a.vals.iter().zip(&b.vals).all(|(x, y)| {
            let (x, y) = (x.to_f64(), y.to_f64());
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= rel_tol * scale
        })
    }

    /// Sparse matrix–vector product `y = A·x`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .into_par_iter()
            .map(|i| {
                let (cols, vals) = self.row(i);
                let mut acc = T::ZERO;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * x[c as usize];
                }
                acc
            })
            .collect()
    }

    /// Maps every stored value through `f`, keeping the pattern.
    pub fn map_values(&self, f: impl Fn(T) -> T + Sync) -> Csr<T> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            vals: self.vals.par_iter().map(|&v| f(v)).collect(),
        }
    }

    /// Converts values to another scalar type, keeping the pattern.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            vals: self.vals.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let a = example();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.get(2, 1), Some(4.0));
        assert_eq!(a.get(2, 2), None);
    }

    #[test]
    fn validation_catches_unsorted_rows() {
        let err = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, FormatError::Invalid(_)));
    }

    #[test]
    fn validation_catches_duplicate_columns() {
        let err = Csr::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, FormatError::Invalid(_)));
    }

    #[test]
    fn validation_catches_bad_pointers() {
        let err =
            Csr::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, FormatError::Invalid(_)));
    }

    #[test]
    fn transpose_is_involutive_and_correct() {
        let a = example();
        let t = a.transpose();
        assert_eq!(t.get(0, 0), Some(1.0));
        assert_eq!(t.get(0, 2), Some(3.0));
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(1, 2), Some(4.0));
        assert_eq!(t.transpose(), a);
        t.validate().unwrap();
    }

    #[test]
    fn identity_multiplied_bounds() {
        let i = Csr::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.row_upper_bounds(&i), vec![1; 4]);
        assert_eq!(i.spgemm_flops(&i), 8);
    }

    #[test]
    fn upper_bounds_count_intermediate_products() {
        let a = example();
        // Row 0 references columns {0, 2}: nnz(row0)=2, nnz(row2)=2 -> 4.
        // Row 2 references columns {0, 1}: nnz(row0)=2, nnz(row1)=0 -> 2.
        assert_eq!(a.row_upper_bounds(&a), vec![4, 0, 2]);
        assert_eq!(a.spgemm_flops(&a), 12);
    }

    #[test]
    fn prune_and_zero_drop() {
        let a = Csr::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 0], vec![0.0, 0.5, -2.0]).unwrap();
        let dropped = a.drop_numeric_zeros();
        assert_eq!(dropped.nnz(), 2);
        let pruned = a.prune(1.0);
        assert_eq!(pruned.nnz(), 1);
        assert_eq!(pruned.get(1, 0), Some(-2.0));
    }

    #[test]
    fn approx_eq_ignoring_zeros_tolerates_explicit_zeros() {
        let a = Csr::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 0.0]).unwrap();
        let b = Csr::from_parts(1, 3, vec![0, 1], vec![0], vec![1.0 + 1e-14]).unwrap();
        assert!(a.approx_eq_ignoring_zeros(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-10));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = example();
        let y = a.spmv(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![201.0, 0.0, 43.0]);
    }

    #[test]
    fn cast_round_trips_pattern() {
        let a = example();
        let f: Csr<f32> = a.cast();
        assert_eq!(f.colidx, a.colidx);
        assert_eq!(f.vals[3], 4.0f32);
    }
}
