//! Dense tile-id bitmaps over sorted index lists — the sidecar the bitmap
//! intersection kernel reads.
//!
//! Step 2 intersects `A`'s tile row `i` (a sorted list of tile-column ids)
//! with `B`'s tile column `j` (a sorted list of tile-row ids). Both lists
//! live in the same universe `0..K` where `K = A.tile_n == B.tile_m`, so a
//! list can be represented as `ceil(K/64)` machine words with one bit per
//! member. Intersection then becomes a word-wise AND; the *position in the
//! list* of a surviving member — what the kernels need to recover the tile
//! ids — comes from a per-word exclusive prefix popcount (`rank`) plus a
//! popcount of the bits below the member inside its word.
//!
//! The sidecar is quadratic-ish in the tile grid (`lists × words`), so the
//! pipeline only builds it when the estimated footprint is small (see
//! [`ListBitmaps::bytes_for`] and the gate in `tilespgemm-core`).

/// Bitmaps of `n` sorted index lists over a shared universe, with per-word
/// exclusive prefix popcounts for rank recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListBitmaps {
    /// Lists covered.
    n_lists: usize,
    /// `u64` words per list: `ceil(universe / 64)`.
    words_per_list: usize,
    /// Membership bits, `n_lists * words_per_list` words; list `l` owns
    /// `words[l*wpl .. (l+1)*wpl]` and member `v` sets bit `v % 64` of word
    /// `v / 64`.
    words: Vec<u64>,
    /// `rank[l*wpl + w]` = members of list `l` strictly below word `w` — an
    /// exclusive prefix popcount, so a member's list position is
    /// `rank[w] + popcount(words[w] & ((1 << bit) - 1))`.
    rank: Vec<u32>,
}

impl ListBitmaps {
    /// Builds bitmaps for the CSR-shaped lists `idx[ptr[l]..ptr[l+1]]`
    /// (each strictly ascending, members `< universe`).
    pub fn from_csr(ptr: &[usize], idx: &[u32], universe: usize) -> Self {
        let n_lists = ptr.len().saturating_sub(1);
        let wpl = universe.div_ceil(64);
        let mut words = vec![0u64; n_lists * wpl];
        let mut rank = vec![0u32; n_lists * wpl];
        for l in 0..n_lists {
            let base = l * wpl;
            for &v in &idx[ptr[l]..ptr[l + 1]] {
                debug_assert!((v as usize) < universe, "list member outside the universe");
                words[base + v as usize / 64] |= 1u64 << (v % 64);
            }
            let mut running = 0u32;
            for w in 0..wpl {
                rank[base + w] = running;
                running += words[base + w].count_ones();
            }
        }
        ListBitmaps {
            n_lists,
            words_per_list: wpl,
            words,
            rank,
        }
    }

    /// Words each list occupies.
    pub fn words_per_list(&self) -> usize {
        self.words_per_list
    }

    /// Lists covered.
    pub fn len(&self) -> usize {
        self.n_lists
    }

    /// `true` when no lists are covered.
    pub fn is_empty(&self) -> bool {
        self.n_lists == 0
    }

    /// The membership words and prefix popcounts of list `l`.
    pub fn list(&self, l: usize) -> (&[u64], &[u32]) {
        let lo = l * self.words_per_list;
        let hi = lo + self.words_per_list;
        (&self.words[lo..hi], &self.rank[lo..hi])
    }

    /// Heap bytes of the sidecar.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>() + self.rank.len() * std::mem::size_of::<u32>()
    }

    /// Predicted [`Self::bytes`] for `n_lists` lists over `universe`,
    /// without building anything — the pipeline's build-or-skip gate.
    pub fn bytes_for(n_lists: usize, universe: usize) -> usize {
        n_lists * universe.div_ceil(64) * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(lists: &[&[u32]], universe: usize) -> ListBitmaps {
        let mut ptr = vec![0usize];
        let mut idx = Vec::new();
        for l in lists {
            idx.extend_from_slice(l);
            ptr.push(idx.len());
        }
        ListBitmaps::from_csr(&ptr, &idx, universe)
    }

    /// Reads members and their list positions back out of the bitmap.
    fn members(bm: &ListBitmaps, l: usize) -> Vec<(u32, u32)> {
        let (words, rank) = bm.list(l);
        let mut out = Vec::new();
        for (w, (&word, &r)) in words.iter().zip(rank.iter()).enumerate() {
            let mut m = word;
            while m != 0 {
                let bit = m.trailing_zeros();
                let pos = r + (word & ((1u64 << bit) - 1)).count_ones();
                out.push((w as u32 * 64 + bit, pos));
                m &= m - 1;
            }
        }
        out
    }

    #[test]
    fn round_trips_members_and_positions() {
        let lists: &[&[u32]] = &[&[0, 3, 63, 64, 127, 200], &[], &[199], &[0, 1, 2, 3]];
        let bm = csr(lists, 201);
        assert_eq!(bm.len(), 4);
        assert_eq!(bm.words_per_list(), 4);
        for (l, list) in lists.iter().enumerate() {
            let got = members(&bm, l);
            let want: Vec<(u32, u32)> = list
                .iter()
                .enumerate()
                .map(|(p, &v)| (v, p as u32))
                .collect();
            assert_eq!(got, want, "list {l}");
        }
    }

    #[test]
    fn rank_is_exclusive_prefix_popcount() {
        let bm = csr(&[&[0, 1, 64, 65, 66, 128]], 192);
        let (_, rank) = bm.list(0);
        assert_eq!(rank, &[0, 2, 5]);
    }

    #[test]
    fn empty_input_is_empty() {
        let bm = ListBitmaps::from_csr(&[0], &[], 100);
        assert!(bm.is_empty());
        assert_eq!(bm.bytes(), 0);
        let bm = ListBitmaps::from_csr(&[], &[], 100);
        assert_eq!(bm.len(), 0);
    }

    #[test]
    fn bytes_for_matches_built_footprint() {
        let bm = csr(&[&[1, 2], &[70]], 130);
        assert_eq!(ListBitmaps::bytes_for(2, 130), bm.bytes());
        assert_eq!(bm.bytes(), 2 * 3 * 12);
    }
}
