//! The paper's sparse-tile format (§3.2).
//!
//! A matrix is partitioned into a grid of 16×16 tiles; only non-empty tiles
//! are stored. Two levels of structure:
//!
//! **High level** — the tile layout, itself a CSR over the tile grid:
//! * `tile_ptr` (`tilePtr`, length `tile_m + 1`) — offsets of each tile row's
//!   tiles;
//! * `tile_colidx` (`tileColIdx`, length `num_tiles`) — tile column indices;
//! * `tile_nnz` (`tileNnz`, length `num_tiles + 1`) — offsets of each tile's
//!   nonzeros in the low-level arrays. (The paper stores this as offsets so
//!   that the omitted 17th row-pointer entry of each tile can be recovered —
//!   we keep exactly that design.)
//!
//! **Low level** — per-tile CSR-style storage with 8-bit locals:
//! * `row_ptr` (`rowPtr`, 16 `u8` entries *per tile*) — local row pointers.
//!   Only 16 entries are stored, not 17: a full tile has 256 nonzeros, which
//!   does not fit in a `u8`; the end of the last row is derived from
//!   `tile_nnz` exactly as the paper describes;
//! * `row_idx` / `col_idx` (`u8` each, length `nnz`) — local coordinates in
//!   `0..16` (each fits in 4 bits; the paper also stores them as unsigned
//!   chars);
//! * `vals` (length `nnz`) — values in tile order, `(row, col)` sorted within
//!   a tile;
//! * `masks` (`u16`, 16 entries per tile) — per-row occupancy bitmasks, bit
//!   `c` of `masks[t * 16 + r]` set iff local `(r, c)` is stored. These drive
//!   the step-2 symbolic phase (`AtomicOr` in the paper) and the step-3
//!   sparse accumulator's rank computation.

pub mod bitmap;
mod build;

pub use bitmap::ListBitmaps;
pub use build::tile_dims;

use crate::{FormatError, Scalar};
use build::{tsg_scan, tsg_split};
use rayon::prelude::*;

/// Below this tile count the index-building helpers (`expand_tile_rowidx`,
/// `col_index`) stay serial; the fork/join and per-chunk bookkeeping overhead
/// dominates for small tile grids.
const INDEX_PAR_THRESHOLD: usize = 1 << 14;

/// Tile edge length. Fixed at 16 by the paper: local indices fill 4 bits
/// (two per `u8`), row masks fill a `u16`, and pointers fill a `u8`.
pub const TILE_DIM: usize = 16;

/// Maximum nonzeros per tile (`TILE_DIM`²).
pub const TILE_AREA: usize = 256;

/// A sparse matrix stored as a CSR-of-sparse-tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TileMatrix<T = f64> {
    /// Number of scalar rows.
    pub nrows: usize,
    /// Number of scalar columns.
    pub ncols: usize,
    /// Number of tile rows (`ceil(nrows / 16)`).
    pub tile_m: usize,
    /// Number of tile columns (`ceil(ncols / 16)`).
    pub tile_n: usize,
    /// High-level tile row pointers, length `tile_m + 1`.
    pub tile_ptr: Vec<usize>,
    /// Tile column indices, ascending within a tile row.
    pub tile_colidx: Vec<u32>,
    /// Per-tile nonzero offsets, length `num_tiles + 1`.
    pub tile_nnz: Vec<usize>,
    /// Local row pointers: 16 `u8` entries per tile.
    pub row_ptr: Vec<u8>,
    /// Local row index of each nonzero (`0..16`).
    pub row_idx: Vec<u8>,
    /// Local column index of each nonzero (`0..16`).
    pub col_idx: Vec<u8>,
    /// Values in tile order.
    pub vals: Vec<T>,
    /// Row bitmasks: 16 `u16` entries per tile.
    pub masks: Vec<u16>,
}

/// A borrowed view of one sparse tile.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a, T> {
    /// Local row pointers (16 entries).
    pub row_ptr: &'a [u8],
    /// Local row indices of the tile's nonzeros.
    pub row_idx: &'a [u8],
    /// Local column indices of the tile's nonzeros.
    pub col_idx: &'a [u8],
    /// Values of the tile's nonzeros.
    pub vals: &'a [T],
    /// Row bitmasks (16 entries).
    pub masks: &'a [u16],
}

impl<'a, T: Scalar> TileView<'a, T> {
    /// Number of nonzeros in the tile.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Range of this tile's nonzero arrays covered by local row `r`.
    #[inline]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        let start = self.row_ptr[r] as usize;
        let end = if r + 1 < TILE_DIM {
            self.row_ptr[r + 1] as usize
        } else {
            self.nnz()
        };
        start..end
    }

    /// Iterates `(local_row, local_col, value)` in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u8, T)> + 'a {
        self.row_idx
            .iter()
            .zip(self.col_idx.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Expands the tile into a dense 256-slot row-major buffer.
    pub fn to_dense(&self) -> [T; TILE_AREA] {
        let mut out = [T::ZERO; TILE_AREA];
        for (r, c, v) in self.iter() {
            out[r as usize * TILE_DIM + c as usize] = v;
        }
        out
    }
}

impl<T: Scalar> TileMatrix<T> {
    /// Number of stored (non-empty or retained-empty) tiles.
    pub fn tile_count(&self) -> usize {
        self.tile_colidx.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The range of tile ids in tile row `ti`.
    pub fn tile_row_range(&self, ti: usize) -> std::ops::Range<usize> {
        self.tile_ptr[ti]..self.tile_ptr[ti + 1]
    }

    /// The tile column indices of tile row `ti`.
    pub fn tile_row_cols(&self, ti: usize) -> &[u32] {
        &self.tile_colidx[self.tile_row_range(ti)]
    }

    /// A view of tile `t` (a flat tile id in `0..tile_count()`).
    pub fn tile(&self, t: usize) -> TileView<'_, T> {
        let nz = self.tile_nnz[t]..self.tile_nnz[t + 1];
        TileView {
            row_ptr: &self.row_ptr[t * TILE_DIM..(t + 1) * TILE_DIM],
            row_idx: &self.row_idx[nz.clone()],
            col_idx: &self.col_idx[nz.clone()],
            vals: &self.vals[nz],
            masks: &self.masks[t * TILE_DIM..(t + 1) * TILE_DIM],
        }
    }

    /// Number of nonzeros in tile `t`.
    pub fn tile_nnz_of(&self, t: usize) -> usize {
        self.tile_nnz[t + 1] - self.tile_nnz[t]
    }

    /// Returns a copy with empty tiles dropped.
    ///
    /// The pipeline predicts the product's tile set *structurally* in step
    /// 1, so tiles whose every candidate position misses (or cancels) come
    /// out with zero stored entries — the `phantom-tile` case. Those tiles
    /// carry no values but still cost every downstream consumer: operand-
    /// side step-1 intersection walks them, and per-tile metadata (34
    /// bytes each) inflates the resident footprint. Compacting is a pure
    /// tiled-to-tiled metadata rewrite — the entry arrays are shared
    /// verbatim since empty tiles own no entries — so a product can be fed
    /// back as an operand without any CSR round-trip.
    pub fn compact(&self) -> Self {
        let empties = (0..self.tile_count())
            .filter(|&t| self.tile_nnz_of(t) == 0)
            .count();
        if empties == 0 {
            return self.clone();
        }
        let kept = self.tile_count() - empties;
        let mut tile_ptr = vec![0usize; self.tile_m + 1];
        let mut tile_colidx = Vec::with_capacity(kept);
        let mut tile_nnz = Vec::with_capacity(kept + 1);
        tile_nnz.push(0usize);
        let mut row_ptr = Vec::with_capacity(kept * TILE_DIM);
        let mut masks = Vec::with_capacity(kept * TILE_DIM);
        for ti in 0..self.tile_m {
            for t in self.tile_row_range(ti) {
                let nnz = self.tile_nnz_of(t);
                if nnz == 0 {
                    continue;
                }
                tile_colidx.push(self.tile_colidx[t]);
                tile_nnz.push(tile_nnz.last().unwrap() + nnz);
                row_ptr.extend_from_slice(&self.row_ptr[t * TILE_DIM..(t + 1) * TILE_DIM]);
                masks.extend_from_slice(&self.masks[t * TILE_DIM..(t + 1) * TILE_DIM]);
            }
            tile_ptr[ti + 1] = tile_colidx.len();
        }
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            tile_m: self.tile_m,
            tile_n: self.tile_n,
            tile_ptr,
            tile_colidx,
            tile_nnz,
            row_ptr,
            row_idx: self.row_idx.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.clone(),
            masks,
        }
    }

    /// Expands `tile_ptr` into a per-tile tile-row index (the
    /// `tileRowIdx` array Algorithms 2 and 3 read).
    pub fn expand_tile_rowidx(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.tile_count()];
        if self.tile_count() < INDEX_PAR_THRESHOLD {
            for ti in 0..self.tile_m {
                out[self.tile_row_range(ti)].fill(ti as u32);
            }
        } else {
            tsg_split(&mut out, &self.tile_ptr)
                .into_par_iter()
                .enumerate()
                .for_each(|(ti, w)| w.fill(ti as u32));
        }
        out
    }

    /// Builds the column-major tile index (`tileColPtr` / `tileRowIdx` of
    /// the paper's Algorithm 2) used to walk `B`'s tile columns in step 2.
    ///
    /// Small grids run the classic serial counting sort; large grids run a
    /// chunked two-pass variant: each chunk of `tile_colidx` is counting-
    /// sorted privately, then per-column windows are gathered from the chunks
    /// in order. Visiting chunks in ascending order keeps tile ids ascending
    /// within a column, so both paths produce identical output.
    pub fn col_index(&self) -> TileColIndex {
        let ntiles = self.tile_count();
        if ntiles < INDEX_PAR_THRESHOLD {
            return self.col_index_serial();
        }
        let rowidx_exp = self.expand_tile_rowidx();
        let chunk = ntiles
            .div_ceil(rayon::current_num_threads().max(1) * 4)
            .max(1);
        // Pass 1: counting-sort each chunk of tile ids by tile column.
        struct ChunkSort {
            /// Per-column offsets into `ids`, length `tile_n + 1`.
            bounds: Vec<usize>,
            /// This chunk's tile ids grouped by column, ascending within one.
            ids: Vec<u32>,
        }
        let chunks: Vec<ChunkSort> = self
            .tile_colidx
            .par_chunks(chunk)
            .enumerate()
            .map(|(ci, cols)| {
                let base = ci * chunk;
                let mut bounds = vec![0usize; self.tile_n + 1];
                for &tc in cols {
                    bounds[tc as usize + 1] += 1;
                }
                for j in 0..self.tile_n {
                    bounds[j + 1] += bounds[j];
                }
                let mut cursor = bounds[..self.tile_n].to_vec();
                let mut ids = vec![0u32; cols.len()];
                for (k, &tc) in cols.iter().enumerate() {
                    ids[cursor[tc as usize]] = (base + k) as u32;
                    cursor[tc as usize] += 1;
                }
                ChunkSort { bounds, ids }
            })
            .collect();
        // Global per-column offsets, then gather each column's window from
        // the chunk-local sorts.
        let col_counts: Vec<usize> = (0..self.tile_n)
            .into_par_iter()
            .map(|j| {
                chunks
                    .iter()
                    .map(|c| c.bounds[j + 1] - c.bounds[j])
                    .sum::<usize>()
            })
            .collect();
        let mut colptr = vec![0usize; self.tile_n + 1];
        tsg_scan(&col_counts, &mut colptr);
        let mut rowidx = vec![0u32; ntiles];
        let mut tile_id = vec![0u32; ntiles];
        let rowidx_w = tsg_split(&mut rowidx, &colptr);
        let tile_id_w = tsg_split(&mut tile_id, &colptr);
        rowidx_w
            .into_par_iter()
            .zip(tile_id_w)
            .enumerate()
            .for_each(|(j, (rowidx_w, tile_id_w))| {
                let mut cur = 0usize;
                for c in &chunks {
                    for &id in &c.ids[c.bounds[j]..c.bounds[j + 1]] {
                        rowidx_w[cur] = rowidx_exp[id as usize];
                        tile_id_w[cur] = id;
                        cur += 1;
                    }
                }
            });
        TileColIndex {
            tile_n: self.tile_n,
            colptr,
            rowidx,
            tile_id,
        }
    }

    fn col_index_serial(&self) -> TileColIndex {
        let mut colptr = vec![0usize; self.tile_n + 1];
        for &tc in &self.tile_colidx {
            colptr[tc as usize + 1] += 1;
        }
        for j in 0..self.tile_n {
            colptr[j + 1] += colptr[j];
        }
        let mut cursor = colptr[..self.tile_n].to_vec();
        let mut rowidx = vec![0u32; self.tile_count()];
        let mut tile_id = vec![0u32; self.tile_count()];
        for ti in 0..self.tile_m {
            for t in self.tile_row_range(ti) {
                let tc = self.tile_colidx[t] as usize;
                let dst = cursor[tc];
                rowidx[dst] = ti as u32;
                tile_id[dst] = t as u32;
                cursor[tc] += 1;
            }
        }
        TileColIndex {
            tile_n: self.tile_n,
            colptr,
            rowidx,
            tile_id,
        }
    }

    /// Checks every structural invariant of the format (§3.2 plus the
    /// derived-17th-pointer rule). Used heavily by tests; cheap enough to
    /// run on every conversion in debug builds.
    pub fn validate(&self) -> Result<(), FormatError> {
        let ntiles = self.tile_count();
        let err = |msg: String| Err(FormatError::Invalid(msg));
        if self.tile_m != self.nrows.div_ceil(TILE_DIM)
            || self.tile_n != self.ncols.div_ceil(TILE_DIM)
        {
            return err("tile grid dimensions disagree with scalar dimensions".into());
        }
        if self.tile_ptr.len() != self.tile_m + 1 {
            return err("tile_ptr length mismatch".into());
        }
        if self.tile_ptr[0] != 0 || *self.tile_ptr.last().unwrap() != ntiles {
            return err("tile_ptr endpoints wrong".into());
        }
        if self.tile_nnz.len() != ntiles + 1 {
            return err("tile_nnz length mismatch".into());
        }
        if self.tile_nnz[0] != 0 || *self.tile_nnz.last().unwrap() != self.nnz() {
            return err("tile_nnz endpoints wrong".into());
        }
        if self.row_ptr.len() != ntiles * TILE_DIM || self.masks.len() != ntiles * TILE_DIM {
            return err("per-tile row_ptr/masks arrays have wrong length".into());
        }
        if self.row_idx.len() != self.nnz() || self.col_idx.len() != self.nnz() {
            return err("row_idx/col_idx length mismatch".into());
        }
        for ti in 0..self.tile_m {
            if self.tile_ptr[ti] > self.tile_ptr[ti + 1] {
                return err("tile_ptr not monotone".into());
            }
            let cols = self.tile_row_cols(ti);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return err(format!("tile row {ti} tile columns not strictly ascending"));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.tile_n {
                    return err(format!("tile row {ti} has tile column {last} out of range"));
                }
            }
        }
        for t in 0..ntiles {
            if self.tile_nnz[t] > self.tile_nnz[t + 1] {
                return err("tile_nnz not monotone".into());
            }
            let tile = self.tile(t);
            let nnz = tile.nnz();
            if nnz > TILE_AREA {
                return err(format!("tile {t} has {nnz} > 256 nonzeros"));
            }
            if tile.row_ptr[0] != 0 {
                return err(format!("tile {t} row_ptr[0] != 0"));
            }
            for r in 0..TILE_DIM {
                let range = tile.row_range(r);
                if range.start > range.end || range.end > nnz {
                    return err(format!("tile {t} row {r} pointer range invalid"));
                }
                let mut mask_check = 0u16;
                let mut prev: Option<u8> = None;
                for k in range.clone() {
                    if tile.row_idx[k] as usize != r {
                        return err(format!("tile {t} nonzero {k} has wrong row_idx"));
                    }
                    let c = tile.col_idx[k];
                    if c as usize >= TILE_DIM {
                        return err(format!("tile {t} local column {c} out of range"));
                    }
                    if let Some(p) = prev {
                        if c <= p {
                            return err(format!("tile {t} row {r} columns not ascending"));
                        }
                    }
                    prev = Some(c);
                    mask_check |= 1 << c;
                }
                if mask_check != tile.masks[r] {
                    return err(format!(
                        "tile {t} row {r} mask {:#06x} disagrees with stored {:#06x}",
                        mask_check, tile.masks[r]
                    ));
                }
            }
            let mask_popcount: u32 = tile.masks.iter().map(|m| m.count_ones()).sum();
            if mask_popcount as usize != nnz {
                return err(format!("tile {t} mask popcount != nnz"));
            }
        }
        Ok(())
    }

    /// Casts values to another scalar type, keeping all structure.
    pub fn cast<U: Scalar>(&self) -> TileMatrix<U> {
        TileMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            tile_m: self.tile_m,
            tile_n: self.tile_n,
            tile_ptr: self.tile_ptr.clone(),
            tile_colidx: self.tile_colidx.clone(),
            tile_nnz: self.tile_nnz.clone(),
            row_ptr: self.row_ptr.clone(),
            row_idx: self.row_idx.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(|v| U::from_f64(v.to_f64())).collect(),
            masks: self.masks.clone(),
        }
    }
}

/// Column-major index over the tile grid: for each tile column, the tile
/// rows present and the flat tile ids, mirroring the `tileColPtr_B` /
/// `tileRowidx_B` arrays of the paper's Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileColIndex {
    /// Number of tile columns.
    pub tile_n: usize,
    /// Per-tile-column offsets, length `tile_n + 1`.
    pub colptr: Vec<usize>,
    /// Tile row indices, ascending within each tile column.
    pub rowidx: Vec<u32>,
    /// Flat tile ids corresponding to `rowidx`.
    pub tile_id: Vec<u32>,
}

impl TileColIndex {
    /// The `(tile_rows, tile_ids)` of tile column `tj`.
    pub fn col(&self, tj: usize) -> (&[u32], &[u32]) {
        let range = self.colptr[tj]..self.colptr[tj + 1];
        (&self.rowidx[range.clone()], &self.tile_id[range])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    /// 20x20 matrix with entries in several tiles, including tile (1,1)
    /// boundary rows.
    fn sample() -> Csr<f64> {
        let mut coo = crate::Coo::new(20, 20);
        // Tile (0,0)
        coo.push(0, 0, 1.0);
        coo.push(0, 15, 2.0);
        coo.push(15, 3, 3.0);
        // Tile (0,1)
        coo.push(2, 16, 4.0);
        // Tile (1,0)
        coo.push(16, 2, 5.0);
        coo.push(19, 15, 6.0);
        // Tile (1,1)
        coo.push(17, 17, 7.0);
        coo.push(19, 19, 8.0);
        coo.to_csr()
    }

    #[test]
    fn structure_and_views() {
        let t = TileMatrix::from_csr(&sample());
        t.validate().unwrap();
        assert_eq!(t.tile_m, 2);
        assert_eq!(t.tile_n, 2);
        assert_eq!(t.tile_count(), 4);
        assert_eq!(t.nnz(), 8);
        assert_eq!(t.tile_row_cols(0), &[0, 1]);
        assert_eq!(t.tile_row_cols(1), &[0, 1]);

        let t00 = t.tile(0);
        assert_eq!(t00.nnz(), 3);
        assert_eq!(t00.masks[0], (1 << 0) | (1 << 15));
        assert_eq!(t00.masks[15], 1 << 3);
        let entries: Vec<_> = t00.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 15, 2.0), (15, 3, 3.0)]);
        assert_eq!(t00.row_range(0), 0..2);
        assert_eq!(t00.row_range(15), 2..3);
    }

    #[test]
    fn expand_tile_rowidx_matches_layout() {
        let t = TileMatrix::from_csr(&sample());
        assert_eq!(t.expand_tile_rowidx(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn col_index_inverts_row_layout() {
        let t = TileMatrix::from_csr(&sample());
        let ci = t.col_index();
        let (rows0, ids0) = ci.col(0);
        assert_eq!(rows0, &[0, 1]);
        let (rows1, ids1) = ci.col(1);
        assert_eq!(rows1, &[0, 1]);
        // Every referenced tile id must have the matching tile column.
        for &id in ids0 {
            assert_eq!(t.tile_colidx[id as usize], 0);
        }
        for &id in ids1 {
            assert_eq!(t.tile_colidx[id as usize], 1);
        }
    }

    #[test]
    fn col_index_parallel_matches_serial_on_large_grid() {
        // Enough tiles to cross INDEX_PAR_THRESHOLD: a diagonal plus a
        // hashed off-diagonal entry per row gives roughly two tiles per
        // tile row.
        let n = TILE_DIM * INDEX_PAR_THRESHOLD;
        let mut coo = crate::Coo::new(n, n);
        for r in 0..n as u32 {
            coo.push(r, r, 1.0);
            coo.push(r, r.wrapping_mul(2654435761) % n as u32, 2.0);
        }
        let t = TileMatrix::<f64>::from_csr(&coo.to_csr());
        assert!(t.tile_count() >= INDEX_PAR_THRESHOLD);
        assert_eq!(t.col_index(), t.col_index_serial());
        let serial_rowidx = {
            let mut out = vec![0u32; t.tile_count()];
            for ti in 0..t.tile_m {
                out[t.tile_row_range(ti)].fill(ti as u32);
            }
            out
        };
        assert_eq!(t.expand_tile_rowidx(), serial_rowidx);
    }

    #[test]
    fn dense_expansion_of_tile() {
        let t = TileMatrix::from_csr(&sample());
        let dense = t.tile(0).to_dense();
        assert_eq!(dense[0], 1.0);
        assert_eq!(dense[15], 2.0);
        assert_eq!(dense[15 * 16 + 3], 3.0);
        assert_eq!(dense.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    fn validate_catches_corrupted_mask() {
        let mut t = TileMatrix::from_csr(&sample());
        t.masks[0] ^= 1 << 7;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_corrupted_rowptr() {
        let mut t = TileMatrix::from_csr(&sample());
        t.row_ptr[1] = 200;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cast_preserves_structure() {
        let t = TileMatrix::from_csr(&sample());
        let f: TileMatrix<f32> = t.cast();
        f.validate().unwrap();
        assert_eq!(f.masks, t.masks);
        assert_eq!(f.vals.len(), t.vals.len());
    }

    #[test]
    fn compact_drops_phantom_tiles_and_preserves_the_matrix() {
        // Splice an empty (phantom) tile between the two real tiles of the
        // sample — the shape step 1 produces when every candidate of a
        // predicted tile misses.
        let t = TileMatrix::from_csr(&sample());
        assert_eq!(t.compact(), t, "no empties: compact is the identity");
        // Append an empty tile (0,2) after tile row 0's real tiles: flat
        // index 2, zero entries, zeroed row pointers and masks.
        let mut padded = t.clone();
        padded.ncols = 33;
        padded.tile_n = 3;
        padded.tile_colidx.insert(2, 2);
        let at = padded.tile_nnz[2];
        padded.tile_nnz.insert(2, at);
        for _ in 0..TILE_DIM {
            padded.row_ptr.insert(2 * TILE_DIM, 0);
            padded.masks.insert(2 * TILE_DIM, 0);
        }
        for p in &mut padded.tile_ptr[1..] {
            *p += 1;
        }
        padded.validate().expect("padded form is well-formed");
        let compacted = padded.compact();
        compacted.validate().unwrap();
        assert_eq!(compacted.tile_count(), t.tile_count());
        assert_eq!(compacted.to_csr(), padded.to_csr(), "same matrix");
    }
}
