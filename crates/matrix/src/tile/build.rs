//! CSR ↔ tiled conversion.
//!
//! The paper measures the CSR→tiled conversion cost in Figure 12 (it stays
//! under roughly ten single SpGEMM runtimes) and otherwise assumes matrices
//! live in tiled form (as AMG-style pipelines keep them). The build here is a
//! two-pass, tile-row-parallel construction:
//!
//! 1. per tile row: walk the 16 covered CSR rows once to discover the
//!    occupied tile columns and their nonzero counts;
//! 2. after a scan produces `tile_ptr`/`tile_nnz`, walk the 16 rows again,
//!    scattering each nonzero into its tile while recording local row
//!    pointers and the row bitmasks.
//!
//! Because CSR rows are sorted and scanned top-to-bottom, each tile's
//! nonzeros come out in `(local_row, local_col)` order — the order the
//! paper's format stores.

use super::{TileMatrix, TILE_DIM};
use crate::{Csr, Scalar};
use rayon::prelude::*;

/// Tile-grid dimensions for a scalar shape.
pub fn tile_dims(nrows: usize, ncols: usize) -> (usize, usize) {
    (nrows.div_ceil(TILE_DIM), ncols.div_ceil(TILE_DIM))
}

/// Per-tile-row discovery result from pass 1.
struct TileRowLayout {
    /// Occupied tile columns, ascending.
    cols: Vec<u32>,
    /// Nonzero count per occupied tile column.
    counts: Vec<u32>,
}

fn discover_tile_row<T: Scalar>(csr: &Csr<T>, ti: usize) -> TileRowLayout {
    let row_lo = ti * TILE_DIM;
    let row_hi = (row_lo + TILE_DIM).min(csr.nrows);
    // Each CSR row is sorted, so its tile columns appear as non-decreasing
    // runs; collect (tile_col, run_len) pairs then merge by sorting. The
    // number of runs is bounded by the row's nnz, typically far smaller.
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for row in row_lo..row_hi {
        let (cols, _) = csr.row(row);
        let mut k = 0;
        while k < cols.len() {
            let tc = cols[k] / TILE_DIM as u32;
            let mut len = 1u32;
            while k + (len as usize) < cols.len() && cols[k + len as usize] / TILE_DIM as u32 == tc
            {
                len += 1;
            }
            runs.push((tc, len));
            k += len as usize;
        }
    }
    runs.sort_unstable_by_key(|&(tc, _)| tc);
    let mut cols = Vec::new();
    let mut counts = Vec::new();
    for (tc, len) in runs {
        if cols.last() == Some(&tc) {
            *counts.last_mut().unwrap() += len;
        } else {
            cols.push(tc);
            counts.push(len);
        }
    }
    TileRowLayout { cols, counts }
}

impl<T: Scalar> TileMatrix<T> {
    /// Converts a sorted CSR matrix into the sparse-tile format.
    pub fn from_csr(csr: &Csr<T>) -> TileMatrix<T> {
        let (tile_m, tile_n) = tile_dims(csr.nrows, csr.ncols);

        // Pass 1: per-tile-row layouts, in parallel.
        let layouts: Vec<TileRowLayout> = (0..tile_m)
            .into_par_iter()
            .map(|ti| discover_tile_row(csr, ti))
            .collect();

        // High-level structure from the layouts: scan the per-tile-row tile
        // counts into tile_ptr, scatter each row's tile columns and nonzero
        // counts into disjoint windows, then scan the counts into tile_nnz.
        // Both scans and the scatter run in parallel on large inputs.
        let row_tile_counts: Vec<usize> = layouts.par_iter().map(|l| l.cols.len()).collect();
        let mut tile_ptr = vec![0usize; tile_m + 1];
        tsg_scan(&row_tile_counts, &mut tile_ptr);
        let num_tiles = tile_ptr[tile_m];
        let mut tile_colidx = vec![0u32; num_tiles];
        let mut tile_counts = vec![0usize; num_tiles];
        {
            let colidx_w = tsg_split(&mut tile_colidx, &tile_ptr);
            let counts_w = tsg_split(&mut tile_counts, &tile_ptr);
            layouts
                .par_iter()
                .zip(colidx_w)
                .zip(counts_w)
                .for_each(|((l, colidx_w), counts_w)| {
                    colidx_w.copy_from_slice(&l.cols);
                    for (slot, &c) in counts_w.iter_mut().zip(l.counts.iter()) {
                        *slot = c as usize;
                    }
                });
        }
        let mut tile_nnz = vec![0usize; num_tiles + 1];
        tsg_scan(&tile_counts, &mut tile_nnz);
        let nnz = tile_nnz[num_tiles];
        debug_assert_eq!(nnz, csr.nnz());

        // Pass 2: scatter nonzeros, build local pointers and masks.
        let mut row_ptr = vec![0u8; num_tiles * TILE_DIM];
        let mut masks = vec![0u16; num_tiles * TILE_DIM];
        let mut row_idx = vec![0u8; nnz];
        let mut col_idx = vec![0u8; nnz];
        let mut vals = vec![T::ZERO; nnz];

        // Split the big arrays into per-tile-row windows so tile rows can be
        // filled independently in parallel.
        let tile_bounds: Vec<usize> = tile_ptr.iter().map(|&t| t * TILE_DIM).collect();
        let nnz_bounds: Vec<usize> = tile_ptr.iter().map(|&t| tile_nnz[t]).collect();
        let row_ptr_w = tsg_split(&mut row_ptr, &tile_bounds);
        let masks_w = tsg_split(&mut masks, &tile_bounds);
        let row_idx_w = tsg_split(&mut row_idx, &nnz_bounds);
        let col_idx_w = tsg_split(&mut col_idx, &nnz_bounds);
        let vals_w = tsg_split(&mut vals, &nnz_bounds);

        layouts
            .par_iter()
            .enumerate()
            .zip(row_ptr_w)
            .zip(masks_w)
            .zip(row_idx_w)
            .zip(col_idx_w)
            .zip(vals_w)
            .for_each(
                |((((((ti, layout), row_ptr_w), masks_w), row_idx_w), col_idx_w), vals_w)| {
                    fill_tile_row(
                        csr,
                        ti,
                        layout,
                        tile_nnz_rel(&tile_nnz, &tile_ptr, ti),
                        row_ptr_w,
                        masks_w,
                        row_idx_w,
                        col_idx_w,
                        vals_w,
                    );
                },
            );

        let out = TileMatrix {
            nrows: csr.nrows,
            ncols: csr.ncols,
            tile_m,
            tile_n,
            tile_ptr,
            tile_colidx,
            tile_nnz,
            row_ptr,
            row_idx,
            col_idx,
            vals,
            masks,
        };
        debug_assert!(out.validate().is_ok(), "from_csr produced invalid tiles");
        out
    }

    /// Converts back to a sorted CSR matrix.
    pub fn to_csr(&self) -> Csr<T> {
        // Count nonzeros per scalar row (parallel over tile rows), scan,
        // then fill; concatenating tiles left-to-right within a tile row
        // yields sorted columns because tile columns are ascending.
        let mut counts = vec![0usize; self.nrows];
        counts
            .par_chunks_mut(TILE_DIM)
            .enumerate()
            .for_each(|(ti, rows)| {
                for t in self.tile_row_range(ti) {
                    let tile = self.tile(t);
                    for (r, row_count) in rows.iter_mut().enumerate() {
                        *row_count += tile.row_range(r).len();
                    }
                }
            });
        let mut rowptr = vec![0usize; self.nrows + 1];
        tsg_scan(&counts, &mut rowptr);
        let nnz = rowptr[self.nrows];
        let mut colidx = vec![0u32; nnz];
        let mut vals = vec![T::ZERO; nnz];
        let row_bounds: Vec<usize> = (0..=self.tile_m)
            .map(|ti| rowptr[(ti * TILE_DIM).min(self.nrows)])
            .collect();
        let colidx_w = tsg_split(&mut colidx, &row_bounds);
        let vals_w = tsg_split(&mut vals, &row_bounds);
        (0..self.tile_m)
            .into_par_iter()
            .zip(colidx_w)
            .zip(vals_w)
            .for_each(|((ti, colidx_w), vals_w)| {
                let base = rowptr[(ti * TILE_DIM).min(self.nrows)];
                let row_lo = ti * TILE_DIM;
                let row_hi = (row_lo + TILE_DIM).min(self.nrows);
                let mut cursor: Vec<usize> =
                    (row_lo..row_hi).map(|row| rowptr[row] - base).collect();
                for t in self.tile_row_range(ti) {
                    let tc = self.tile_colidx[t];
                    let tile = self.tile(t);
                    for (r, cur) in cursor.iter_mut().enumerate() {
                        for k in tile.row_range(r) {
                            colidx_w[*cur] = tc * TILE_DIM as u32 + tile.col_idx[k] as u32;
                            vals_w[*cur] = tile.vals[k];
                            *cur += 1;
                        }
                    }
                }
            });
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }
}

/// Relative nonzero offsets of tile row `ti`'s tiles (first tile at 0).
fn tile_nnz_rel<'a>(tile_nnz: &'a [usize], tile_ptr: &[usize], ti: usize) -> &'a [usize] {
    &tile_nnz[tile_ptr[ti]..=tile_ptr[ti + 1]]
}

#[allow(clippy::too_many_arguments)]
fn fill_tile_row<T: Scalar>(
    csr: &Csr<T>,
    ti: usize,
    layout: &TileRowLayout,
    tile_offsets: &[usize],
    row_ptr_w: &mut [u8],
    masks_w: &mut [u16],
    row_idx_w: &mut [u8],
    col_idx_w: &mut [u8],
    vals_w: &mut [T],
) {
    let base = tile_offsets[0];
    // Per-tile write cursor, relative to this tile row's window.
    let mut cursor: Vec<usize> = tile_offsets[..layout.cols.len()]
        .iter()
        .map(|&o| o - base)
        .collect();
    let row_lo = ti * TILE_DIM;
    let row_hi = (row_lo + TILE_DIM).min(csr.nrows);
    for r in 0..TILE_DIM {
        // Record each tile's local row pointer before consuming row r.
        for (k, &cur) in cursor.iter().enumerate() {
            let rel = cur - (tile_offsets[k] - base);
            debug_assert!(rel <= u8::MAX as usize);
            row_ptr_w[k * TILE_DIM + r] = rel as u8;
        }
        let row = row_lo + r;
        if row >= row_hi {
            continue;
        }
        let (cols, vals) = csr.row(row);
        let mut k = 0usize; // position in layout.cols, tile columns ascend
        for (&c, &v) in cols.iter().zip(vals) {
            let tc = c / TILE_DIM as u32;
            while layout.cols[k] != tc {
                k += 1;
            }
            let dst = cursor[k];
            row_idx_w[dst] = r as u8;
            col_idx_w[dst] = (c % TILE_DIM as u32) as u8;
            vals_w[dst] = v;
            cursor[k] += 1;
            masks_w[k * TILE_DIM + r] |= 1 << (c % TILE_DIM as u32);
        }
    }
}

// Thin local equivalents of tsg-runtime's split/scan primitives so this crate
// reads without a hard dependency on the runtime crate (tsg-matrix must stay
// a leaf below tsg-runtime). Shared with `col_index` in the parent module.
pub(crate) fn tsg_split<'a, T>(data: &'a mut [T], offsets: &[usize]) -> Vec<&'a mut [T]> {
    let mut windows = Vec::with_capacity(offsets.len().saturating_sub(1));
    let mut rest = data;
    let mut consumed = 0usize;
    for w in offsets.windows(2) {
        let (head, tail) = rest.split_at_mut(w[1] - consumed);
        windows.push(head);
        rest = tail;
        consumed = w[1];
        debug_assert!(w[0] <= w[1]);
    }
    windows
}

/// Exclusive scan of `counts` into `out` (`out.len() == counts.len() + 1`),
/// switching to a two-pass parallel scan above a length threshold.
pub(crate) fn tsg_scan(counts: &[usize], out: &mut [usize]) -> usize {
    debug_assert_eq!(out.len(), counts.len() + 1);
    let n = counts.len();
    if n < 1 << 15 {
        let mut running = 0usize;
        for (o, &c) in out.iter_mut().zip(counts.iter()) {
            *o = running;
            running += c;
        }
        out[n] = running;
        return running;
    }
    let chunk = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    let chunk_sums: Vec<usize> = counts
        .par_chunks(chunk)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    let mut running = 0usize;
    let offsets: Vec<usize> = chunk_sums
        .iter()
        .map(|&s| {
            let o = running;
            running += s;
            o
        })
        .collect();
    let total = running;
    out[n] = total;
    out[..n]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .zip(offsets)
        .for_each(|((o, c), offset)| {
            let mut running = offset;
            for (slot, &count) in o.iter_mut().zip(c.iter()) {
                *slot = running;
                running += count;
            }
        });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn random_csr(n: usize, m: usize, nnz: usize, seed: u64) -> Csr<f64> {
        // Tiny xorshift so the matrix crate needs no rand dev-dependency here.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, m);
        for _ in 0..nnz {
            let r = (next() % n as u64) as u32;
            let c = (next() % m as u64) as u32;
            let v = (next() % 17) as f64 - 8.0;
            if v != 0.0 {
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn round_trip_identity_on_random_matrices() {
        for (n, m, nnz, seed) in [
            (1usize, 1usize, 1usize, 3u64),
            (16, 16, 40, 5),
            (17, 33, 100, 7),
            (100, 100, 900, 11),
            (257, 129, 3000, 13),
            (64, 1000, 2000, 17),
        ] {
            let csr = random_csr(n, m, nnz, seed);
            let tiled = TileMatrix::from_csr(&csr);
            tiled.validate().unwrap();
            assert_eq!(tiled.to_csr(), csr, "round trip failed for {n}x{m}");
        }
    }

    #[test]
    fn tile_dims_rounding() {
        assert_eq!(tile_dims(16, 16), (1, 1));
        assert_eq!(tile_dims(17, 16), (2, 1));
        assert_eq!(tile_dims(1, 1), (1, 1));
        assert_eq!(tile_dims(0, 0), (0, 0));
        assert_eq!(tile_dims(256, 31), (16, 2));
    }

    #[test]
    fn empty_matrix_builds_no_tiles() {
        let csr = Csr::<f64>::zero(40, 40);
        let t = TileMatrix::from_csr(&csr);
        t.validate().unwrap();
        assert_eq!(t.tile_count(), 0);
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn full_tile_has_256_nonzeros() {
        let mut coo = Coo::new(16, 16);
        for r in 0..16u32 {
            for c in 0..16u32 {
                coo.push(r, c, (r * 16 + c) as f64 + 1.0);
            }
        }
        let csr = coo.to_csr();
        let t = TileMatrix::from_csr(&csr);
        t.validate().unwrap();
        assert_eq!(t.tile_count(), 1);
        assert_eq!(t.tile_nnz_of(0), 256);
        assert_eq!(t.tile(0).masks, &[0xFFFFu16; 16]);
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn single_column_matrix_tiles_correctly() {
        let mut coo = Coo::new(100, 1);
        for r in 0..100u32 {
            coo.push(r, 0, r as f64 + 1.0);
        }
        let csr = coo.to_csr();
        let t = TileMatrix::from_csr(&csr);
        t.validate().unwrap();
        assert_eq!(t.tile_m, 7);
        assert_eq!(t.tile_n, 1);
        assert_eq!(t.tile_count(), 7);
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn diagonal_matrix_has_one_tile_per_diagonal_block() {
        let csr = Csr::<f64>::identity(64);
        let t = TileMatrix::from_csr(&csr);
        assert_eq!(t.tile_count(), 4);
        for tile_id in 0..4 {
            assert_eq!(t.tile_nnz_of(tile_id), 16);
        }
        assert_eq!(t.to_csr(), csr);
    }
}
