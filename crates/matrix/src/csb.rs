//! Compressed Sparse Blocks (Buluç et al.), in the two variants the paper's
//! Figure 11 compares the tiled format against.
//!
//! CSB partitions the matrix into β×β blocks with β ≈ √n and stores a *dense*
//! pointer grid over the blocks (no per-block column indices needed) plus
//! per-nonzero block-local coordinates:
//!
//! * **CSB-I** ("index"): each nonzero stores its local `(row, col)` pair as
//!   two 16-bit indices (4 bytes of index per nonzero), supporting any
//!   β ≤ 65536;
//! * **CSB-M" ("merged"): each nonzero packs both locals into one 16-bit
//!   word (2 bytes of index per nonzero), restricting β ≤ 256.
//!
//! The paper reports the tiled format using ~113 MB more than CSB-M and
//! ~82 MB more than CSB-I on its dataset (tiles pay for per-tile row
//! pointers and masks); our Figure-11 harness reproduces that ordering.

use crate::{Coo, Csr, FormatError, Scalar};

fn choose_beta(nrows: usize, ncols: usize, max_beta: usize) -> usize {
    let n = nrows.max(ncols).max(1);
    let mut beta = 16usize;
    while beta * beta < n && beta < max_beta {
        beta *= 2;
    }
    beta.min(max_beta)
}

macro_rules! csb_common {
    ($name:ident) => {
        impl<T: Scalar> $name<T> {
            /// Number of stored nonzeros.
            pub fn nnz(&self) -> usize {
                self.vals.len()
            }

            /// Number of block rows.
            pub fn blk_rows(&self) -> usize {
                self.nrows.div_ceil(self.beta)
            }

            /// Number of block columns.
            pub fn blk_cols(&self) -> usize {
                self.ncols.div_ceil(self.beta)
            }

            /// The nonzero range of block `(bi, bj)` in the value arrays.
            pub fn block_range(&self, bi: usize, bj: usize) -> std::ops::Range<usize> {
                let b = bi * self.blk_cols() + bj;
                self.blkptr[b]..self.blkptr[b + 1]
            }
        }
    };
}

/// CSB with two 16-bit local indices per nonzero.
#[derive(Debug, Clone, PartialEq)]
pub struct CsbI<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Block edge length.
    pub beta: usize,
    /// Dense block pointer grid (row-major), length `blk_rows*blk_cols + 1`.
    pub blkptr: Vec<usize>,
    /// Block-local row index per nonzero.
    pub lrow: Vec<u16>,
    /// Block-local column index per nonzero.
    pub lcol: Vec<u16>,
    /// Values, grouped by block (row-major block order), row-major inside.
    pub vals: Vec<T>,
}

csb_common!(CsbI);

/// CSB with one packed 16-bit local index per nonzero (β ≤ 256).
#[derive(Debug, Clone, PartialEq)]
pub struct CsbM<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Block edge length (≤ 256).
    pub beta: usize,
    /// Dense block pointer grid (row-major), length `blk_rows*blk_cols + 1`.
    pub blkptr: Vec<usize>,
    /// Packed local coordinates: high byte = local row, low byte = local col.
    pub lidx: Vec<u16>,
    /// Values, grouped by block (row-major block order), row-major inside.
    pub vals: Vec<T>,
}

csb_common!(CsbM);

/// Shared two-pass bucketing: returns `(beta, blkptr, order)` where `order`
/// lists nonzero positions of `coo` grouped by block.
fn bucket<T: Scalar>(coo: &Coo<T>, beta: usize) -> (Vec<usize>, Vec<usize>) {
    let blk_cols = coo.ncols.div_ceil(beta).max(1);
    let blk_rows = coo.nrows.div_ceil(beta).max(1);
    let nblocks = blk_rows * blk_cols;
    let mut blkptr = vec![0usize; nblocks + 1];
    for &(r, c, _) in &coo.entries {
        let b = (r as usize / beta) * blk_cols + c as usize / beta;
        blkptr[b + 1] += 1;
    }
    for b in 0..nblocks {
        blkptr[b + 1] += blkptr[b];
    }
    let mut cursor = blkptr[..nblocks].to_vec();
    let mut order = vec![0usize; coo.entries.len()];
    for (k, &(r, c, _)) in coo.entries.iter().enumerate() {
        let b = (r as usize / beta) * blk_cols + c as usize / beta;
        order[cursor[b]] = k;
        cursor[b] += 1;
    }
    (blkptr, order)
}

impl<T: Scalar> CsbI<T> {
    /// Builds from CSR with β = max(16, next power of two ≥ √n), β ≤ 65536.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let beta = choose_beta(csr.nrows, csr.ncols, 1 << 16);
        Self::from_csr_with_beta(csr, beta).expect("beta chosen within range")
    }

    /// Builds with an explicit block size.
    pub fn from_csr_with_beta(csr: &Csr<T>, beta: usize) -> Result<Self, FormatError> {
        if beta == 0 || beta > 1 << 16 {
            return Err(FormatError::Invalid(format!(
                "CSB-I block size {beta} out of range 1..=65536"
            )));
        }
        let coo = csr.to_coo();
        let (blkptr, order) = bucket(&coo, beta);
        let mut lrow = vec![0u16; coo.entries.len()];
        let mut lcol = vec![0u16; coo.entries.len()];
        let mut vals = vec![T::ZERO; coo.entries.len()];
        for (dst, &src) in order.iter().enumerate() {
            let (r, c, v) = coo.entries[src];
            lrow[dst] = (r as usize % beta) as u16;
            lcol[dst] = (c as usize % beta) as u16;
            vals[dst] = v;
        }
        Ok(Self {
            nrows: csr.nrows,
            ncols: csr.ncols,
            beta,
            blkptr,
            lrow,
            lcol,
            vals,
        })
    }

    /// Converts back to sorted CSR.
    pub fn to_csr(&self) -> Csr<T> {
        let blk_cols = self.blk_cols();
        let mut coo = Coo::new(self.nrows, self.ncols);
        for bi in 0..self.blk_rows() {
            for bj in 0..blk_cols {
                for k in self.block_range(bi, bj) {
                    coo.push(
                        (bi * self.beta + self.lrow[k] as usize) as u32,
                        (bj * self.beta + self.lcol[k] as usize) as u32,
                        self.vals[k],
                    );
                }
            }
        }
        coo.to_csr()
    }
}

impl<T: Scalar> CsbM<T> {
    /// Builds from CSR with β = max(16, next power of two ≥ √n), β ≤ 256.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let beta = choose_beta(csr.nrows, csr.ncols, 256);
        Self::from_csr_with_beta(csr, beta).expect("beta chosen within range")
    }

    /// Builds with an explicit block size (must be ≤ 256).
    pub fn from_csr_with_beta(csr: &Csr<T>, beta: usize) -> Result<Self, FormatError> {
        if beta == 0 || beta > 256 {
            return Err(FormatError::Invalid(format!(
                "CSB-M block size {beta} out of range 1..=256"
            )));
        }
        let coo = csr.to_coo();
        let (blkptr, order) = bucket(&coo, beta);
        let mut lidx = vec![0u16; coo.entries.len()];
        let mut vals = vec![T::ZERO; coo.entries.len()];
        for (dst, &src) in order.iter().enumerate() {
            let (r, c, v) = coo.entries[src];
            let lr = (r as usize % beta) as u16;
            let lc = (c as usize % beta) as u16;
            lidx[dst] = (lr << 8) | lc;
            vals[dst] = v;
        }
        Ok(Self {
            nrows: csr.nrows,
            ncols: csr.ncols,
            beta,
            blkptr,
            lidx,
            vals,
        })
    }

    /// Converts back to sorted CSR.
    pub fn to_csr(&self) -> Csr<T> {
        let blk_cols = self.blk_cols();
        let mut coo = Coo::new(self.nrows, self.ncols);
        for bi in 0..self.blk_rows() {
            for bj in 0..blk_cols {
                for k in self.block_range(bi, bj) {
                    let lr = (self.lidx[k] >> 8) as usize;
                    let lc = (self.lidx[k] & 0xFF) as usize;
                    coo.push(
                        (bi * self.beta + lr) as u32,
                        (bj * self.beta + lc) as u32,
                        self.vals[k],
                    );
                }
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample(n: usize, seed: u64) -> Csr<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 6 {
            coo.push(
                (next() % n as u64) as u32,
                (next() % n as u64) as u32,
                (next() % 9 + 1) as f64,
            );
        }
        coo.to_csr()
    }

    #[test]
    fn beta_selection_tracks_sqrt_n() {
        assert_eq!(choose_beta(100, 100, 1 << 16), 16);
        assert_eq!(choose_beta(1 << 12, 1 << 12, 1 << 16), 64);
        assert_eq!(choose_beta(1 << 20, 1 << 20, 256), 256); // clamped for CSB-M
        assert_eq!(choose_beta(1 << 20, 1 << 20, 1 << 16), 1024);
    }

    #[test]
    fn csb_i_round_trip() {
        for n in [5usize, 64, 100, 257] {
            let csr = sample(n, n as u64);
            let csb = CsbI::from_csr(&csr);
            assert_eq!(csb.to_csr(), csr, "CSB-I round trip failed for n={n}");
        }
    }

    #[test]
    fn csb_m_round_trip() {
        for n in [5usize, 64, 100, 257, 1000] {
            let csr = sample(n, n as u64 + 1);
            let csb = CsbM::from_csr(&csr);
            assert!(csb.beta <= 256);
            assert_eq!(csb.to_csr(), csr, "CSB-M round trip failed for n={n}");
        }
    }

    #[test]
    fn explicit_beta_bounds_are_enforced() {
        let csr = sample(32, 9);
        assert!(CsbM::from_csr_with_beta(&csr, 512).is_err());
        assert!(CsbM::from_csr_with_beta(&csr, 0).is_err());
        assert!(CsbI::from_csr_with_beta(&csr, 1 << 17).is_err());
        assert!(CsbI::from_csr_with_beta(&csr, 32).is_ok());
    }

    #[test]
    fn packed_index_preserves_locals() {
        let csr = sample(300, 42);
        let m = CsbM::from_csr_with_beta(&csr, 64).unwrap();
        let i = CsbI::from_csr_with_beta(&csr, 64).unwrap();
        assert_eq!(m.nnz(), i.nnz());
        for k in 0..m.nnz() {
            assert_eq!((m.lidx[k] >> 8), i.lrow[k]);
            assert_eq!((m.lidx[k] & 0xFF), i.lcol[k]);
        }
    }

    #[test]
    fn block_ranges_partition_nnz() {
        let csr = sample(120, 77);
        let csb = CsbI::from_csr_with_beta(&csr, 32).unwrap();
        let mut total = 0;
        for bi in 0..csb.blk_rows() {
            for bj in 0..csb.blk_cols() {
                total += csb.block_range(bi, bj).len();
            }
        }
        assert_eq!(total, csr.nnz());
    }
}
