//! Small dense matrices.
//!
//! The brute-force oracle for testing: every SpGEMM implementation in the
//! workspace is property-tested against [`Dense::matmul`] on small random
//! matrices.

use crate::{Csr, Scalar};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row-major storage, length `nrows * ncols`.
    pub data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// An all-zero matrix.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// The value at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.ncols + c]
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.ncols + c] = v;
    }

    /// Densifies a CSR matrix.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let mut d = Self::zero(csr.nrows, csr.ncols);
        for row in 0..csr.nrows {
            let (cols, vals) = csr.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(row, c as usize, v);
            }
        }
        d
    }

    /// Sparsifies, keeping entries that are not exactly zero.
    pub fn to_csr(&self) -> Csr<T> {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if v != T::ZERO {
                    colidx.push(c as u32);
                    vals.push(v);
                }
            }
            rowptr[r + 1] = colidx.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Naive O(n³) matrix multiplication — the correctness oracle.
    pub fn matmul(&self, other: &Dense<T>) -> Dense<T> {
        assert_eq!(self.ncols, other.nrows, "inner dimensions must agree");
        let mut out = Dense::zero(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                if a == T::ZERO {
                    continue;
                }
                for j in 0..other.ncols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Dense<T> {
        let mut out = Dense::zero(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum absolute element-wise difference, in `f64`.
    pub fn max_abs_diff(&self, other: &Dense<T>) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        let mut a = Dense::zero(2, 3);
        a.set(0, 0, 1.0);
        a.set(0, 2, 2.0);
        a.set(1, 1, 3.0);
        let mut b = Dense::zero(3, 2);
        b.set(0, 0, 4.0);
        b.set(1, 1, 5.0);
        b.set(2, 0, 6.0);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 16.0); // 1*4 + 2*6
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.get(1, 1), 15.0);
    }

    #[test]
    fn csr_round_trip() {
        let csr =
            Csr::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, -2.0, 4.0]).unwrap();
        let d = Dense::from_csr(&csr);
        assert_eq!(d.get(0, 2), -2.0);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn transpose_involution() {
        let mut a = Dense::zero(2, 3);
        a.set(1, 2, 9.0);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 9.0);
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let a = Dense::<f64>::zero(2, 2);
        let mut b = Dense::zero(2, 2);
        b.set(1, 0, 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
