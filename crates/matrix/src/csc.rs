//! Compressed Sparse Column.
//!
//! Used where column-wise access to `B` is natural (the tile-level column
//! index of step 2 is the tile-granularity analogue) and by the `AAᵀ`
//! experiment plumbing of Figure 8.

use crate::{Csr, Scalar};

/// A sparse matrix in CSC form with sorted columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Column pointers, length `ncols + 1`.
    pub colptr: Vec<usize>,
    /// Row indices, length `nnz`, ascending within each column.
    pub rowidx: Vec<u32>,
    /// Values, length `nnz`.
    pub vals: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Builds the CSC representation of a CSR matrix.
    pub fn from_csr(csr: &Csr<T>) -> Self {
        let t = csr.transpose();
        Self {
            nrows: csr.nrows,
            ncols: csr.ncols,
            colptr: t.rowptr,
            rowidx: t.colidx,
            vals: t.vals,
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr<T> {
        let as_csr_of_transpose = Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr: self.colptr.clone(),
            colidx: self.rowidx.clone(),
            vals: self.vals.clone(),
        };
        as_csr_of_transpose.transpose()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// The row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        let range = self.colptr[j]..self.colptr[j + 1];
        (&self.rowidx[range.clone()], &self.vals[range])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn example() -> Csr<f64> {
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn columns_contain_the_right_entries() {
        let c = Csc::from_csr(&example());
        assert_eq!(c.col(0), (&[0u32, 2][..], &[1.0, 3.0][..]));
        assert_eq!(c.col(1), (&[2u32][..], &[4.0][..]));
        assert_eq!(c.col(2), (&[0u32][..], &[2.0][..]));
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn csr_csc_round_trip() {
        let a = example();
        assert_eq!(Csc::from_csr(&a).to_csr(), a);
    }

    #[test]
    fn empty_matrix_round_trip() {
        let a = Csr::<f64>::zero(2, 5);
        let c = Csc::from_csr(&a);
        assert_eq!(c.colptr, vec![0; 6]);
        assert_eq!(c.to_csr(), a);
    }
}
