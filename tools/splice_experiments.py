#!/usr/bin/env python3
"""Splices measured results from a figure-harness transcript into
EXPERIMENTS.md, replacing the @@TOKEN@@ placeholders.

Usage: python3 tools/splice_experiments.py [figures_output.txt] [EXPERIMENTS.md]
"""
import re
import sys


def section(text, start, end):
    """Lines between the banner containing `start` and the one with `end`."""
    lines = text.splitlines()
    out, active = [], False
    for line in lines:
        if start in line:
            active = True
            continue
        if active and (end in line or line.startswith(">>> running")):
            break
        if active:
            out.append(line)
    return [l for l in out if not l.startswith("csv,")]


def code_block(lines):
    body = "\n".join(l.rstrip() for l in lines if l.strip())
    return "```\n" + body + "\n```"


def main():
    transcript = sys.argv[1] if len(sys.argv) > 1 else "figures_output.txt"
    target = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    text = open(transcript).read()
    doc = open(target).read()

    # Table 2: the aligned table rows.
    t2 = section(text, "Table 2:", "==== Figure")
    doc = doc.replace("@@TABLE2@@", code_block(t2))

    # Figure 6 summary block.
    f6 = section(text, "Figure 6 summary", "Note:")
    doc = doc.replace("@@FIG6@@", code_block(f6))

    # Figure 7 table.
    f7 = section(text, "Figure 7:", "(0.00 = method")
    doc = doc.replace("@@FIG7@@", code_block(f7))
    peaks = [
        float(m.group(1))
        for m in re.finditer(
            r"csv,fig7,TSOPF[^,]*,TileSpGEMM,[^,]*,[^,]*,[^,]*,([0-9.]+)", text
        )
    ]
    doc = doc.replace("@@FIG7PEAK@@", f"{max(peaks):.2f}" if peaks else "n/a")

    # Figure 8 table.
    f8 = section(text, "Figure 8:", "==== Figure 9")
    doc = doc.replace("@@FIG8@@", code_block(f8))

    # Figure 9: pick three illustrative matrices.
    f9_all = section(text, "Figure 9:", "==== Figure 10")
    keep, current = [], False
    for line in f9_all:
        name = line.strip()
        if name and not line.startswith(" "):
            current = name in ("pdb1HYS-like", "cant-like", "cop20k_A-like")
        if current:
            keep.append(line)
    doc = doc.replace("@@FIG9@@", code_block(keep))

    # Figure 10 average row.
    avg = next((l for l in text.splitlines() if l.startswith("AVERAGE")), "")
    doc = doc.replace("@@FIG10@@", code_block([
        "matrix                     step1 %   step2 %   step3 %   alloc %",
        avg,
    ]))

    # Figure 11 totals.
    f11 = section(text, "Figure 11:", "Paper: tiled")
    header = [l for l in f11 if l.startswith("matrix")]
    total = [l for l in f11 if l.startswith("TOTAL")]
    doc = doc.replace("@@FIG11@@", code_block(header + total))

    # Figure 12 summary line.
    f12 = next((l for l in text.splitlines() if l.startswith("conversion/spgemm")), "")
    doc = doc.replace("@@FIG12@@", f"`{f12}`")

    # Figure 13 table + summary.
    f13 = section(text, "Figure 13:", "geomean speedup")
    doc = doc.replace("@@FIG13@@", code_block(f13))
    m = re.search(r"geomean speedup ([0-9.]+)x, max ([0-9.]+)x", text)
    speedups = [
        float(x.group(1))
        for x in re.finditer(r"csv,fig13,[^,]*,[^,]*,[^,]*,([0-9.]+)", text)
    ]
    wins = sum(1 for s in speedups if s > 1.0)
    doc = doc.replace("@@FIG13WINS@@", str(wins))
    doc = doc.replace("@@FIG13GEO@@", f"{m.group(1)}×" if m else "n/a")
    doc = doc.replace("@@FIG13MAX@@", f"{m.group(2)}×" if m else "n/a")

    # Figure 14: the mc2depi-t block.
    f14_lines = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.strip() == "mc2depi-t":
            f14_lines = [l for l in lines[i : i + 4] if not l.startswith("csv,")]
            break
    doc = doc.replace("@@FIG14@@", "\n" + code_block(f14_lines) + "\n")

    open(target, "w").write(doc)
    leftover = re.findall(r"@@[A-Z0-9]+@@", doc)
    if leftover:
        print(f"WARNING: unresolved placeholders: {leftover}")
    else:
        print(f"spliced {transcript} into {target}")


if __name__ == "__main__":
    main()
