//! Method shootout: run every SpGEMM implementation in the workspace on one
//! dataset matrix and compare time, throughput, and peak tracked memory.
//!
//! ```text
//! cargo run --release --example method_shootout -- webbase-1M-like
//! cargo run --release --example method_shootout -- rma10-like --aat
//! cargo run --release --example method_shootout -- --list
//! ```

use tilespgemm::baselines::{MethodKind, PreparedOperands};
use tilespgemm::gen::suite::{all_entries, by_name};
use tilespgemm::runtime::MemTracker;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for e in all_entries() {
            println!("{}", e.name);
        }
        return;
    }
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "pdb1HYS-like".to_string());
    let aat = args.iter().any(|a| a == "--aat");

    let entry = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown matrix {name:?}; try --list");
        std::process::exit(1);
    });

    println!("building {} ...", entry.name);
    let a = entry.build();
    let op = if aat { "A*A^T" } else { "A^2" };
    let prep = if aat {
        PreparedOperands::aat(a)
    } else {
        PreparedOperands::squared(a)
    };
    let stats = tilespgemm::gen::matrix_stats(&prep.a, &prep.b);
    println!(
        "{}: n={} nnz={} flops({op})={} nnz(C)={} compression rate {:.2}",
        entry.name, stats.n, stats.nnz_a, stats.flops, stats.nnz_c, stats.compression_rate
    );
    println!(
        "\n{:<16} {:>10} {:>10} {:>12} {:>12}",
        "method", "time (ms)", "GFlops", "peak (MB)", "nnz(C)"
    );
    for kind in MethodKind::all() {
        let tracker = MemTracker::new();
        let start = std::time::Instant::now();
        match prep.run(kind, &tracker) {
            Ok((_, nnz_c, peak)) => {
                let t = start.elapsed();
                println!(
                    "{:<16} {:>10.2} {:>10.2} {:>12.2} {:>12}",
                    kind.name(),
                    t.as_secs_f64() * 1e3,
                    stats.flops as f64 / t.as_secs_f64() / 1e9,
                    peak as f64 / 1e6,
                    nnz_c
                );
            }
            Err(e) => println!("{:<16} failed: {e}", kind.name()),
        }
    }
}
