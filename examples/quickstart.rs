//! Quickstart: build a sparse matrix, convert it to the paper's tiled
//! format, square it with TileSpGEMM, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tilespgemm::prelude::*;

fn main() {
    // 1. Build a sparse matrix. Here: a 5-point Laplacian on a 100x100 grid
    //    (the `mc2depi` family of the paper's dataset); any CSR matrix or a
    //    Matrix Market file loaded via `tilespgemm::matrix::io` works.
    let a: Csr<f64> = tilespgemm::gen::stencil::grid_2d_5pt(100, 100);
    println!("A: {}x{} with {} nonzeros", a.nrows, a.ncols, a.nnz());

    // 2. Convert once to the tiled format (§3.2 of the paper): 16x16 sparse
    //    tiles, each stored CSR-style with 8-bit local indices and 16-bit
    //    row bitmasks.
    let tiled = TileMatrix::from_csr(&a);
    println!(
        "tiled: {} tiles on a {}x{} tile grid ({:.1} nnz/tile)",
        tiled.tile_count(),
        tiled.tile_m,
        tiled.tile_n,
        tiled.nnz() as f64 / tiled.tile_count() as f64
    );

    // 3. Multiply. The tracker enforces (and reports) device-memory use;
    //    `Config::default()` is the paper's configuration: binary-search
    //    intersection, adaptive accumulator with tnnz = 192.
    let tracker = MemTracker::new();
    let out =
        tilespgemm::core::multiply(&tiled, &tiled, &Config::default(), &tracker).expect("multiply");

    // 4. Inspect: runtime breakdown (the paper's Figure 10 slices), result
    //    shape, and peak memory.
    let b = out.breakdown;
    println!(
        "C = A^2: {} nonzeros in {} tiles",
        out.c.nnz(),
        out.c.tile_count()
    );
    println!(
        "breakdown: step1 {:?}, step2 {:?}, step3 {:?}, alloc {:?}",
        b.step1, b.step2, b.step3, b.alloc
    );
    println!("peak tracked memory: {:.2} MB", out.peak_bytes as f64 / 1e6);

    // 5. Convert back to CSR for downstream use.
    let c = out.c.to_csr();
    let flops = a.spgemm_flops(&a);
    println!(
        "check: flops={} compression rate={:.2}",
        flops,
        (flops / 2) as f64 / c.nnz() as f64
    );
    assert_eq!(c.nrows, 10_000);
    // The square of the 5-point stencil is the 13-point pattern at interior
    // nodes.
    assert_eq!(c.row_nnz(50 * 100 + 50), 13);
    println!("ok");
}
