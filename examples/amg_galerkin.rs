//! Algebraic-multigrid Galerkin product — the paper's flagship application.
//!
//! AMG solvers (the paper's introduction and §4.6) build a coarse-grid
//! operator `A_c = R · A · P` with two SpGEMMs per level, where `P` is a
//! prolongation (interpolation) operator and `R = Pᵀ`. The paper argues the
//! CSR→tiled conversion amortises because each level's output feeds the
//! next level's SpGEMM directly in tiled form — this example demonstrates
//! exactly that pipeline with aggregation-based coarsening.
//!
//! ```text
//! cargo run --release --example amg_galerkin
//! ```

use tilespgemm::prelude::*;

/// Piecewise-constant aggregation prolongation: groups of `agg` consecutive
/// fine unknowns map to one coarse unknown. Returns the n_f x n_c operator.
fn aggregation_prolongation(n_fine: usize, agg: usize) -> Csr<f64> {
    let n_coarse = n_fine.div_ceil(agg);
    let mut coo = tilespgemm::matrix::Coo::new(n_fine, n_coarse);
    for i in 0..n_fine {
        coo.push(i as u32, (i / agg) as u32, 1.0);
    }
    coo.to_csr()
}

fn galerkin_level(a: &TileMatrix<f64>, p: &TileMatrix<f64>, r: &TileMatrix<f64>) -> Csr<f64> {
    let cfg = Config::default();
    let tracker = MemTracker::new();
    // A · P, then R · (A · P) — both products stay in tiled form.
    let ap = tilespgemm::core::multiply(a, p, &cfg, &tracker).expect("A*P");
    let rap = tilespgemm::core::multiply(r, &ap.c, &cfg, &tracker).expect("R*AP");
    rap.c.to_csr().drop_numeric_zeros()
}

fn main() {
    // Fine-grid operator: 2-D Poisson on a 128x128 grid (16,384 unknowns).
    let mut level: Csr<f64> = tilespgemm::gen::stencil::grid_2d_5pt(128, 128);
    println!("AMG setup via TileSpGEMM Galerkin triple products");
    println!(
        "level 0: n = {:6}, nnz = {:7}, avg row {:4.1}",
        level.nrows,
        level.nnz(),
        level.nnz() as f64 / level.nrows as f64
    );

    let mut total_galerkin_ms = 0.0;
    for depth in 1..=4 {
        let p_csr = aggregation_prolongation(level.nrows, 4);
        let p = TileMatrix::from_csr(&p_csr);
        let r = TileMatrix::from_csr(&p_csr.transpose());
        let a = TileMatrix::from_csr(&level);

        let start = std::time::Instant::now();
        let coarse = galerkin_level(&a, &p, &r);
        let dt = start.elapsed().as_secs_f64() * 1e3;
        total_galerkin_ms += dt;

        println!(
            "level {depth}: n = {:6}, nnz = {:7}, avg row {:4.1} ({dt:6.2} ms for R*A*P)",
            coarse.nrows,
            coarse.nnz(),
            coarse.nnz() as f64 / coarse.nrows as f64
        );

        // Sanity: with piecewise-constant aggregation P·1 = 1, so the
        // Galerkin product preserves the total stencil mass
        // 1ᵀA_c·1 = 1ᵀA·1, and symmetry of A carries over to A_c.
        let fine_mass = tilespgemm::matrix::ops::sum_all(&level);
        let coarse_mass = tilespgemm::matrix::ops::sum_all(&coarse);
        assert!(
            (fine_mass - coarse_mass).abs() < 1e-8 * fine_mass.abs().max(1.0),
            "Galerkin product lost mass: {fine_mass} -> {coarse_mass}"
        );
        assert_eq!(coarse, coarse.transpose(), "A_c must stay symmetric");
        level = coarse;
    }
    println!("total Galerkin time: {total_galerkin_ms:.2} ms across 4 levels");
    println!("ok");
}
