//! Triangle counting with SpGEMM — one of the paper's motivating graph
//! workloads (§1 cites linear-algebra triangle counting).
//!
//! For an undirected graph with adjacency matrix `A`, the triangle count is
//! `trace(A³)/6`, computed here the GraphBLAS way as
//! `sum(A² ∘ A) / 6` — one TileSpGEMM for `A²` and a Hadamard mask with `A`
//! (avoiding the dense fill of a full `A³`).
//!
//! ```text
//! cargo run --release --example triangle_counting
//! ```

use tilespgemm::matrix::ops::{hadamard, remove_diagonal, sum_all, symmetrize_pattern};
use tilespgemm::prelude::*;

/// Counts triangles via `sum(A² ∘ A) / 6` — the full square followed by a
/// Hadamard mask.
fn count_triangles(adj: &Csr<f64>) -> u64 {
    let tiled = TileMatrix::from_csr(adj);
    let a2 = tilespgemm::core::multiply(&tiled, &tiled, &Config::default(), &MemTracker::new())
        .expect("A^2")
        .c
        .to_csr();
    let masked = hadamard(&a2, adj);
    (sum_all(&masked) / 6.0).round() as u64
}

/// Counts triangles via the masked product `C⟨A⟩ = A·A` — the GraphBLAS
/// formulation: entries of the square outside `A`'s own pattern are never
/// computed, so the (often much denser) full `A²` is never materialised.
fn count_triangles_masked(adj: &Csr<f64>) -> u64 {
    let tiled = TileMatrix::from_csr(adj);
    let out = tilespgemm::core::multiply_masked(
        &tiled,
        &tiled,
        &tiled,
        &Config::default(),
        &MemTracker::new(),
    )
    .expect("masked A^2");
    (sum_all(&out.c.to_csr()) / 6.0).round() as u64
}

/// Brute-force oracle for small graphs.
fn count_triangles_naive(adj: &Csr<f64>) -> u64 {
    let mut count = 0u64;
    for u in 0..adj.nrows {
        let (nu, _) = adj.row(u);
        for &v in nu {
            if (v as usize) <= u {
                continue;
            }
            let (nv, _) = adj.row(v as usize);
            // |N(u) ∩ N(v)| restricted to w > v.
            for &w in nv {
                if (w as usize) > v as usize && nu.binary_search(&w).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

fn main() {
    // A scale-free graph: symmetrised R-MAT, self-loops removed — the
    // social-network-like workload triangle counting targets.
    let raw =
        tilespgemm::gen::rmat::rmat(13, 60_000, tilespgemm::gen::rmat::RmatParams::GRAPH500, 42);
    let adj = remove_diagonal(&symmetrize_pattern(&raw));
    println!("graph: {} vertices, {} edges", adj.nrows, adj.nnz() / 2);

    let start = std::time::Instant::now();
    let triangles = count_triangles(&adj);
    let dt = start.elapsed();
    println!("triangles (full A² + Hadamard):    {triangles} in {dt:?}");

    let start = std::time::Instant::now();
    let triangles_masked = count_triangles_masked(&adj);
    let dt_masked = start.elapsed();
    println!("triangles (masked C<A> = A·A):     {triangles_masked} in {dt_masked:?}");
    assert_eq!(triangles, triangles_masked);

    // Cross-check on a subsampled graph (oracle is O(m^1.5)-ish, keep it
    // small).
    let small_raw =
        tilespgemm::gen::rmat::rmat(9, 4_000, tilespgemm::gen::rmat::RmatParams::GRAPH500, 7);
    let small = remove_diagonal(&symmetrize_pattern(&small_raw));
    let fast = count_triangles(&small);
    let slow = count_triangles_naive(&small);
    assert_eq!(fast, slow, "SpGEMM count disagrees with the oracle");
    println!(
        "oracle check on {}-vertex graph: {fast} == {slow} ok",
        small.nrows
    );
}
