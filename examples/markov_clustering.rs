//! Markov clustering (MCL) — the paper cites HipMCL-style Markov clustering
//! as a core SpGEMM application (§1). MCL alternates:
//!
//! * **expansion** — squaring the column-stochastic transition matrix
//!   (an SpGEMM, here TileSpGEMM);
//! * **inflation** — element-wise powering followed by column
//!   re-normalisation (sharpens cluster structure);
//! * **pruning** — dropping tiny entries to keep the iterate sparse.
//!
//! On a planted-partition graph the stationary pattern's connected
//! components recover the planted clusters.
//!
//! ```text
//! cargo run --release --example markov_clustering
//! ```

use rand::Rng;
use tilespgemm::matrix::ops::normalize_columns;
use tilespgemm::prelude::*;

/// Planted-partition graph: `k` clusters of `size` vertices; dense inside
/// (probability 0.5), sparse across (probability `0.02`).
fn planted_partition(k: usize, size: usize, seed: u64) -> Csr<f64> {
    let n = k * size;
    let mut rng = tilespgemm::gen::rng(seed);
    let mut coo = Coo::new(n, n);
    for u in 0..n {
        coo.push(u as u32, u as u32, 1.0); // self-loop, standard for MCL
        for v in (u + 1)..n {
            let same = u / size == v / size;
            let p = if same { 0.5 } else { 0.02 };
            if rng.gen_bool(p) {
                coo.push(u as u32, v as u32, 1.0);
                coo.push(v as u32, u as u32, 1.0);
            }
        }
    }
    coo.to_csr()
}

fn inflate(m: &Csr<f64>, power: f64, prune: f64) -> Csr<f64> {
    let powered = m.map_values(|v| v.abs().powf(power));
    normalize_columns(&powered).prune(prune)
}

/// Connected components of the symmetrised pattern (union-find).
fn components(m: &Csr<f64>) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..m.nrows).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for u in 0..m.nrows {
        for &v in m.row(u).0 {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru] = rv;
            }
        }
    }
    (0..m.nrows).map(|u| find(&mut parent, u)).collect()
}

fn main() {
    let (k, size) = (8, 40);
    let adj = planted_partition(k, size, 11);
    println!(
        "planted-partition graph: {} vertices, {} edges, {k} clusters of {size}",
        adj.nrows,
        adj.nnz() / 2
    );

    let mut m = normalize_columns(&adj);
    for iter in 1..=12 {
        // Expansion: M <- M² via TileSpGEMM.
        let tiled = TileMatrix::from_csr(&m);
        let squared =
            tilespgemm::core::multiply(&tiled, &tiled, &Config::default(), &MemTracker::new())
                .expect("expansion")
                .c
                .to_csr()
                .drop_numeric_zeros();
        // Inflation + pruning.
        m = inflate(&squared, 2.0, 1e-4);
        println!("iter {iter:2}: nnz = {}", m.nnz());
    }

    // Clusters = connected components of the converged pattern.
    let labels = components(&m);
    let mut distinct: Vec<usize> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!("MCL found {} clusters (planted {k})", distinct.len());

    // Verify the planted partition is recovered: every vertex shares its
    // component with its planted cluster.
    for cluster in 0..k {
        let rep = labels[cluster * size];
        for v in 0..size {
            assert_eq!(
                labels[cluster * size + v],
                rep,
                "vertex {} split from its planted cluster",
                cluster * size + v
            );
        }
    }
    assert_eq!(distinct.len(), k, "cluster count mismatch");
    println!("planted clusters recovered ok");
}
