//! Artifact-style command-line driver, mirroring the interface and output
//! of the paper's artifact (appendix A.7/A.8):
//!
//! ```text
//! cargo run --release --bin tile_spgemm -- -d 0 -aat 0 path/to/matrix.mtx
//! cargo run --release --bin tile_spgemm -- -aat 1 webbase-1M-like
//! ```
//!
//! `-d` selects the simulated device (`0` = rtx3090-sim, `1` = rtx3060-sim);
//! `-aat` selects `C = A²` (0) or `C = A·Aᵀ` (1). The final argument is a
//! Matrix Market file or the name of a built-in synthetic dataset entry.
//!
//! The output lines follow appendix A.8: matrix information, load time,
//! tile size, flop count, conversion time, tiled-structure space, the
//! three step times plus allocation time, `C`'s tile and nonzero counts,
//! total runtime with GFlops, and a correctness check against the serial
//! reference implementation.
//!
//! A second mode drives the resident engine (see `tsg-serve`) with
//! JSON-lines scripts:
//!
//! ```text
//! tile_spgemm client script.jsonl          # in-process engine
//! echo '{"op":"stats"}' | tile_spgemm client -
//! tile_spgemm client --connect 127.0.0.1:7878 script.jsonl
//! ```
//!
//! Scripts speak protocol v3, so beyond `load`/`convert`/`multiply` they can
//! chain products on resident handles (`{"op":"chain","ids":[...]}` or
//! `{"op":"power","a":"m…","k":6}` — intermediates stay tiled, no CSR
//! round-trips), mask a product (`{"op":"multiply",…,"mask":"m…"}`), and
//! form linear combinations (`{"op":"add",…,"alpha":2.0,"beta":-1.0}`).
//! See the README's "Triangle counting over the wire" quick-start.

use std::io::{BufRead, BufReader, Write};
use std::time::Instant;
use tilespgemm::baselines::reference::reference_spgemm;
use tilespgemm::matrix::Footprint;
use tilespgemm::prelude::*;
use tilespgemm::runtime::{run_on, Device};

struct Args {
    device: usize,
    aat: bool,
    input: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        device: 0,
        aat: false,
        input: String::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-d" => {
                args.device = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("expected a device index after -d"));
                i += 2;
            }
            "-aat" => {
                let v: usize = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("expected 0 or 1 after -aat"));
                args.aat = v != 0;
                i += 2;
            }
            other if !other.starts_with('-') => {
                args.input = other.to_string();
                i += 1;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.input.is_empty() {
        die("usage: tile_spgemm [-d 0|1] [-aat 0|1] <matrix.mtx | dataset-name>");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// When `resp` is a backpressure refusal, returns how long the server asked
/// us to hold the request before resubmitting.
fn backpressure_delay(resp: &str) -> Option<std::time::Duration> {
    use tilespgemm::engine::json::{parse, Value};
    let v = parse(resp).ok()?;
    if v.get("ok").and_then(Value::as_bool) != Some(false) {
        return None;
    }
    let code = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str);
    if code != Some("backpressure") {
        return None;
    }
    let ms = v
        .get("retry_after_ms")
        .and_then(Value::as_f64)
        .unwrap_or(10.0);
    Some(std::time::Duration::from_millis(
        ms.clamp(1.0, 1000.0) as u64
    ))
}

/// `tile_spgemm client [--connect ADDR] <script.jsonl | ->`
///
/// Feeds engine-protocol request lines (from a file, or stdin with `-`) to
/// an in-process scheduler, or to a running `tsg-serve` when `--connect`
/// names its TCP address, and prints one response line per request.
/// Backpressure refusals are handled transparently: the client holds the
/// request for the hinted `retry_after_ms` and resubmits, so scripts never
/// see flow control.
fn run_client(argv: &[String]) -> ! {
    let mut connect: Option<String> = None;
    let mut script: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => {
                connect = Some(
                    argv.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("expected an address after --connect")),
                );
                i += 2;
            }
            other => {
                script = Some(other.to_string());
                i += 1;
            }
        }
    }
    let script = script
        .unwrap_or_else(|| die("usage: tile_spgemm client [--connect ADDR] <script.jsonl | ->"));
    let requests: Box<dyn BufRead> = if script == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        let f = std::fs::File::open(&script)
            .unwrap_or_else(|e| die(&format!("cannot open {script}: {e}")));
        Box::new(BufReader::new(f))
    };
    let stdout = std::io::stdout();

    match connect {
        Some(addr) => {
            // Remote mode: forward lines to tsg-serve and echo its replies.
            let stream = std::net::TcpStream::connect(&addr)
                .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
            let mut replies = BufReader::new(
                stream
                    .try_clone()
                    .unwrap_or_else(|e| die(&format!("cannot clone connection: {e}"))),
            );
            let mut stream = stream;
            let mut out = stdout.lock();
            for line in requests.lines() {
                let line = line.unwrap_or_else(|e| die(&format!("read error: {e}")));
                if line.trim().is_empty() {
                    continue;
                }
                loop {
                    writeln!(stream, "{line}")
                        .unwrap_or_else(|e| die(&format!("send failed: {e}")));
                    let mut resp = String::new();
                    match replies.read_line(&mut resp) {
                        Ok(0) => die("server closed the connection"),
                        Ok(_) => {
                            if let Some(delay) = backpressure_delay(&resp) {
                                eprintln!(
                                    "tile_spgemm: backpressure — retrying in {} ms",
                                    delay.as_millis()
                                );
                                std::thread::sleep(delay);
                                continue;
                            }
                            let _ = write!(out, "{resp}");
                        }
                        Err(e) => die(&format!("receive failed: {e}")),
                    }
                    break;
                }
            }
        }
        None => {
            // Local mode: an in-process scheduler behind the same protocol,
            // so scripts using the v2 session/batch verbs run unchanged.
            use tilespgemm::engine::protocol::Control;
            use tilespgemm::engine::{Engine, EngineConfig};
            use tilespgemm::serve::{SchedConfig, Scheduler, ServeSession};
            let scheduler = std::sync::Arc::new(Scheduler::new(
                std::sync::Arc::new(Engine::new(EngineConfig::default())),
                SchedConfig::default(),
            ));
            let session = ServeSession::new(scheduler);
            let mut out = stdout.lock();
            'script: for line in requests.lines() {
                let line = line.unwrap_or_else(|e| die(&format!("read error: {e}")));
                if line.trim().is_empty() {
                    continue;
                }
                loop {
                    let (resp, control) = session.handle_line(&line);
                    if let Some(delay) = backpressure_delay(&resp) {
                        eprintln!(
                            "tile_spgemm: backpressure — retrying in {} ms",
                            delay.as_millis()
                        );
                        std::thread::sleep(delay);
                        continue;
                    }
                    writeln!(out, "{resp}").unwrap_or_else(|e| die(&format!("write failed: {e}")));
                    if control == Control::Shutdown {
                        break 'script;
                    }
                    break;
                }
            }
        }
    }
    std::process::exit(0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("client") {
        run_client(&argv[1..]);
    }
    let args = parse_args();
    let device = match args.device {
        0 => Device::rtx3090_sim(),
        1 => Device::rtx3060_sim(),
        other => die(&format!("unknown device {other}; use 0 (3090) or 1 (3060)")),
    };

    // Lines 1-3: input matrix information and load time.
    let load_start = Instant::now();
    let a: Csr<f64> = if args.input.ends_with(".mtx") {
        tilespgemm::matrix::io::read_matrix_market_file::<f64>(&args.input)
            .unwrap_or_else(|e| die(&format!("failed to read {}: {e}", args.input)))
            .to_csr()
    } else {
        tilespgemm::gen::suite::by_name(&args.input)
            .unwrap_or_else(|| die(&format!("unknown dataset entry {:?}", args.input)))
            .build()
    };
    let load_time = load_start.elapsed();
    println!("input matrix: {}", args.input);
    println!(
        "the number of rows, columns and nonzeros: {} x {}, nnz = {}",
        a.nrows,
        a.ncols,
        a.nnz()
    );
    println!("load time: {:.6} s", load_time.as_secs_f64());

    // Line 4: tile size.
    println!("tile size: {TILE_DIM} x {TILE_DIM}");

    let b = if args.aat { a.transpose() } else { a.clone() };

    // Line 5: flop count.
    let flops = a.spgemm_flops(&b);
    println!(
        "the number of floating point operations (C = {}): {flops}",
        if args.aat { "A*A^T" } else { "A^2" }
    );

    // Line 6: CSR -> tiled conversion time (Figure 12's quantity).
    let (ta, conv) = tilespgemm::core::timed_csr_to_tile(&a);
    let tb = if args.aat {
        TileMatrix::from_csr(&b)
    } else {
        ta.clone()
    };
    println!(
        "CSR -> tiled conversion time: {:.3} ms ({} tiles)",
        conv.conversion.as_secs_f64() * 1e3,
        conv.tiles
    );

    // Line 7: tiled structure space consumption (Figure 11's quantity).
    println!(
        "tiled data structure space: {:.3} MB (CSR: {:.3} MB)",
        ta.bytes() as f64 / 1e6,
        a.bytes() as f64 / 1e6
    );

    // Lines 8-14: the three steps and allocation time on the chosen device.
    let tracker = MemTracker::with_budget(device.mem_budget);
    let start = Instant::now();
    let result = run_on(&device, || {
        tilespgemm::core::multiply(&ta, &tb, &Config::default(), &tracker)
    });
    let total = start.elapsed();
    let out = match result {
        Ok(out) => out,
        Err(e) => die(&format!("TileSpGEMM failed on {}: {e}", device.name)),
    };
    let bd = out.breakdown;
    println!("device: {} ({} threads)", device.name, device.threads);
    println!(
        "step 1 (tile structure SpGEMM): {:.3} ms",
        bd.step1.as_secs_f64() * 1e3
    );
    println!(
        "step 2 (per-tile symbolic):     {:.3} ms",
        bd.step2.as_secs_f64() * 1e3
    );
    println!(
        "step 3 (per-tile numeric):      {:.3} ms",
        bd.step3.as_secs_f64() * 1e3
    );
    println!(
        "CPU & GPU memory allocation:    {:.3} ms",
        bd.alloc.as_secs_f64() * 1e3
    );
    println!(
        "peak tracked device memory:     {:.3} MB",
        out.peak_bytes as f64 / 1e6
    );

    // Lines 15-17: result structure and throughput.
    println!("the number of tiles of C: {}", out.c.tile_count());
    println!("the number of nonzeros of C: {}", out.c.nnz());
    println!(
        "TileSpGEMM runtime: {:.3} ms, performance: {:.3} GFlops",
        total.as_secs_f64() * 1e3,
        flops as f64 / total.as_secs_f64() / 1e9
    );

    // Line 18: correctness check (the artifact compares against cuSPARSE;
    // we compare against the serial gold reference).
    let want = reference_spgemm(&a, &b).drop_numeric_zeros();
    let got = out.c.to_csr().drop_numeric_zeros();
    if got.approx_eq_ignoring_zeros(&want, 1e-9) {
        println!("check passed! (matches the serial reference)");
    } else {
        println!("check FAILED");
        std::process::exit(1);
    }
}
