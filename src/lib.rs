#![warn(missing_docs)]

//! # tilespgemm — Rust reproduction of TileSpGEMM (PPoPP '22)
//!
//! A from-scratch implementation of *TileSpGEMM: A Tiled Algorithm for
//! Parallel Sparse General Matrix-Matrix Multiplication on GPUs* (Niu, Lu,
//! Ji, Song, Jin, Liu — PPoPP 2022), together with every substrate its
//! evaluation depends on: the sparse-tile format, four row-row baseline
//! methods (cuSPARSE/bhSPARSE/NSPARSE/spECK analogues), a tSparse-like
//! dense-tile method, CSB formats, synthetic dataset generators, a simulated
//! two-device runtime with memory budgeting, and a figure-by-figure
//! benchmark harness.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`matrix`] — formats: [`matrix::Csr`], [`matrix::TileMatrix`], CSB, …
//! * [`core`] — the TileSpGEMM algorithm: [`core::multiply`]
//! * [`baselines`] — competing methods: [`baselines::run_method`]
//! * [`gen`] — dataset generators and registries
//! * [`runtime`] — devices, memory tracking, breakdowns
//! * [`engine`] — the resident service engine behind `tsg-serve`
//!
//! ## Quickstart
//!
//! ```
//! use tilespgemm::prelude::*;
//!
//! // A small sparse matrix in CSR form.
//! let a = tilespgemm::gen::stencil::grid_2d_5pt(32, 32);
//! // Convert once to the paper's tiled format...
//! let tiled = TileMatrix::from_csr(&a);
//! // ...and multiply through an execution context, which owns the
//! // configuration, memory accounting, and (optional) profiling recorder.
//! let ctx = SpGemm::new();
//! let out = ctx.multiply(&tiled, &tiled).unwrap();
//! // A² of the 5-point stencil has the 13-point pattern.
//! assert_eq!(out.c.to_csr().row_nnz(17 * 32 + 17), 13);
//! ```

pub use tilespgemm_core as core;
pub use tsg_baselines as baselines;
pub use tsg_engine as engine;
pub use tsg_gen as gen;
pub use tsg_matrix as matrix;
pub use tsg_runtime as runtime;
pub use tsg_serve as serve;

/// The types most programs need.
pub mod prelude {
    pub use tilespgemm_core::{multiply, multiply_csr, Config, SpGemm, SpGemmError};
    pub use tsg_matrix::{Coo, Csr, Scalar, TileMatrix, TILE_DIM};
    pub use tsg_runtime::{
        CollectingRecorder, Counter, Device, MemTracker, MetricsSnapshot, NullRecorder, Recorder,
    };
}
